"""End-to-end tests of the streaming engine (no Rhino yet)."""

import pytest

from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import MapLogic, FilterLogic, StatefulCounterLogic
from repro.engine.windows import (
    SlidingWindowAggregate,
    TumblingWindowJoin,
    SessionWindowJoin,
)
from repro.engine.records import Record

from tests.engine_fixtures import EngineEnv


def passthrough_graph(parallelism=2):
    graph = StreamGraph("passthrough")
    graph.source("src", topic="events", parallelism=parallelism)
    graph.sink("out", inputs=[("src", "forward")])
    return graph


class TestPipelines:
    def test_source_to_sink_delivers_all_records(self):
        env = EngineEnv()
        env.topic("events", 2)
        env.feed_sequence("events", keys=["a", "b", "c"], count=30)
        job = env.job(passthrough_graph()).start()
        env.run(until=5.0)
        results = job.sink_results("out")
        assert len(results) == 30

    def test_map_transforms_values(self):
        env = EngineEnv()
        env.topic("events", 1)
        env.feed_sequence("events", keys=["k"], count=10)
        graph = StreamGraph("map")
        graph.source("src", topic="events", parallelism=1)
        graph.operator(
            "double", lambda: MapLogic(lambda v: v * 2), 1, inputs=[("src", "forward")]
        )
        graph.sink("out", inputs=[("double", "forward")])
        job = env.job(graph).start()
        env.run(until=5.0)
        values = sorted(v for _k, _t, v, _w in job.sink_results("out"))
        assert values == [0, 2, 4, 6, 8, 10, 12, 14, 16, 18]

    def test_filter_drops_records(self):
        env = EngineEnv()
        env.topic("events", 1)
        env.feed_sequence("events", keys=["k"], count=10)
        graph = StreamGraph("filter")
        graph.source("src", topic="events", parallelism=1)
        graph.operator(
            "odd", lambda: FilterLogic(lambda v: v % 2 == 1), 1, inputs=[("src", "forward")]
        )
        graph.sink("out", inputs=[("odd", "forward")])
        job = env.job(graph).start()
        env.run(until=5.0)
        assert len(job.sink_results("out")) == 5

    def test_keyed_counter_partitions_by_key(self):
        env = EngineEnv()
        env.topic("events", 2)
        env.feed_sequence("events", keys=["a", "b", "c", "d"], count=40)
        graph = StreamGraph("count")
        graph.source("src", topic="events", parallelism=2)
        graph.operator(
            "count",
            StatefulCounterLogic,
            2,
            inputs=[("src", "hash")],
            stateful=True,
            measure_latency=True,
        )
        graph.sink("out", inputs=[("count", "forward")])
        job = env.job(graph).start()
        env.run(until=5.0)
        # Each key's final count must be 10 and each key must live on
        # exactly one instance.
        finals = {}
        for key, _t, value, _w in job.sink_results("out"):
            finals[key] = max(finals.get(key, 0), value)
        assert finals == {"a": 10, "b": 10, "c": 10, "d": 10}

    def test_latency_metrics_are_sampled(self):
        env = EngineEnv()
        env.topic("events", 1)
        # interval=0 keeps creation timestamps in the past of processing
        # time, as with a live generator.
        env.feed_sequence("events", keys=["k"], count=20, interval=0.0)
        graph = StreamGraph("latency")
        graph.source("src", topic="events", parallelism=1)
        graph.operator(
            "count",
            StatefulCounterLogic,
            1,
            inputs=[("src", "hash")],
            stateful=True,
            measure_latency=True,
        )
        graph.sink("out", inputs=[("count", "forward")])
        job = env.job(graph).start()
        env.run(until=5.0)
        assert len(job.metrics.latency) == 20
        assert all(
            latency >= 0 for _t, latency, _w in job.metrics.latency.samples
        )

    def test_state_bytes_accumulate(self):
        env = EngineEnv()
        env.topic("events", 1)
        env.feed_sequence("events", keys=["a", "b"], count=20, nbytes=100)
        graph = StreamGraph("state-bytes")
        graph.source("src", topic="events", parallelism=1)
        graph.operator(
            "count", StatefulCounterLogic, 1, inputs=[("src", "hash")], stateful=True
        )
        graph.sink("out", inputs=[("count", "forward")])
        job = env.job(graph).start()
        env.run(until=5.0)
        # Two keys, last write wins per key: 2 * 100 bytes of live state.
        assert job.total_state_bytes("count") == 200


class TestWindows:
    def test_sliding_window_aggregate_counts(self):
        env = EngineEnv()
        env.topic("bids", 1)
        # 1 record per 0.5 s for 60 s, all for one key.
        env.feed_sequence("bids", keys=["k"], count=120, interval=0.5)
        graph = StreamGraph("nbq5-like")
        graph.source("src", topic="bids", parallelism=1)
        graph.operator(
            "agg",
            lambda: SlidingWindowAggregate(size=10.0, slide=5.0),
            1,
            inputs=[("src", "hash")],
            stateful=True,
        )
        graph.sink("out", inputs=[("agg", "forward")])
        job = env.job(graph).start()
        env.run(until=120.0)
        results = job.sink_results("out")
        assert results, "window should have fired"
        # A full 10 s window at 2 records/s holds 20 records.
        full_windows = [v for _k, t, v, _w in results if t >= 10.0]
        assert full_windows
        assert all(v == 20 for v in full_windows)

    def test_tumbling_window_join_matches_keys(self):
        env = EngineEnv()
        env.topic("left", 1)
        env.topic("right", 1)
        for i in range(10):
            env.log.append("left", 0, Record("k", 0.5 + i * 0.1, value=f"L{i}"))
        for i in range(5):
            env.log.append("right", 0, Record("k", 0.5 + i * 0.1, value=f"R{i}"))
        # Push both watermarks past the window end.
        env.log.append("left", 0, Record("other", 10.0, value="late"))
        env.log.append("right", 0, Record("other", 10.0, value="late"))
        graph = StreamGraph("join")
        graph.source("left", topic="left", parallelism=1)
        graph.source("right", topic="right", parallelism=1)
        graph.operator(
            "join",
            lambda: TumblingWindowJoin(size=5.0),
            1,
            inputs=[("left", "hash"), ("right", "hash")],
            stateful=True,
        )
        graph.sink("out", inputs=[("join", "forward")])
        job = env.job(graph).start()
        env.run(until=20.0)
        results = [r for r in job.sink_results("out") if r[0] == "k"]
        assert len(results) == 1
        _key, _t, value, weight = results[0]
        assert value == {"left": 10, "right": 5}
        assert weight == 50  # 10 x 5 join pairs

    def test_tumbling_join_state_deleted_after_fire(self):
        env = EngineEnv()
        env.topic("left", 1)
        env.topic("right", 1)
        env.log.append("left", 0, Record("k", 1.0, value="L", nbytes=1000))
        env.log.append("right", 0, Record("k", 1.0, value="R", nbytes=1000))
        env.log.append("left", 0, Record("z", 30.0, value="wm"))
        env.log.append("right", 0, Record("z", 30.0, value="wm"))
        graph = StreamGraph("join-gc")
        graph.source("left", topic="left", parallelism=1)
        graph.source("right", topic="right", parallelism=1)
        graph.operator(
            "join",
            lambda: TumblingWindowJoin(size=5.0),
            1,
            inputs=[("left", "hash"), ("right", "hash")],
            stateful=True,
        )
        graph.sink("out", inputs=[("join", "forward")])
        job = env.job(graph).start()
        env.run(until=40.0)
        instance = job.stateful_instances("join")[0]
        # Window [0,5) fired and its entries were deleted; after compaction
        # the live bytes shrink to just the un-fired window of key "z".
        instance.state.store.flush()
        instance.state.store.compact()
        assert instance.state.total_bytes < 200

    def test_session_window_join(self):
        env = EngineEnv()
        env.topic("left", 1)
        env.topic("right", 1)
        # One session of activity around t=1..2, then silence.
        for i in range(5):
            env.log.append("left", 0, Record("k", 1.0 + i * 0.2, value=i))
            env.log.append("right", 0, Record("k", 1.0 + i * 0.2, value=i))
        env.log.append("left", 0, Record("z", 60.0, value="wm"))
        env.log.append("right", 0, Record("z", 60.0, value="wm"))
        graph = StreamGraph("session")
        graph.source("left", topic="left", parallelism=1)
        graph.source("right", topic="right", parallelism=1)
        graph.operator(
            "join",
            lambda: SessionWindowJoin(gap=5.0),
            1,
            inputs=[("left", "hash"), ("right", "hash")],
            stateful=True,
        )
        graph.sink("out", inputs=[("join", "forward")])
        job = env.job(graph).start()
        env.run(until=90.0)
        results = [r for r in job.sink_results("out") if r[0] == "k"]
        assert len(results) == 1
        assert results[0][3] == 25  # 5 x 5 pairs in the session


class TestCheckpointing:
    def make_job(self, env, interval=1.0):
        graph = StreamGraph("ckpt")
        graph.source("src", topic="events", parallelism=2)
        graph.operator(
            "count", StatefulCounterLogic, 2, inputs=[("src", "hash")], stateful=True
        )
        graph.sink("out", inputs=[("count", "forward")])
        config = JobConfig(
            num_key_groups=16,
            checkpoint_interval=interval,
            exchange_interval=0.05,
            watermark_interval=0.05,
            source_idle_timeout=0.05,
        )
        return env.job(graph, config=config)

    def test_checkpoint_completes_with_offsets_and_state(self):
        env = EngineEnv()
        env.topic("events", 2)
        env.feed_sequence("events", keys=["a", "b", "c"], count=30)
        job = self.make_job(env).start()
        env.run(until=5.0)
        assert job.coordinator.has_completed()
        completed = job.coordinator.latest_completed()
        assert set(completed.offsets) == {"src[0]", "src[1]"}
        assert sum(completed.offsets.values()) == 30
        assert set(completed.checkpoints) == {"count[0]", "count[1]"}

    def test_checkpoints_are_incremental(self):
        env = EngineEnv()
        env.topic("events", 2)
        env.feed_sequence("events", keys=["a", "b", "c", "d"], count=20, nbytes=50)
        job = self.make_job(env).start()
        env.run(until=1.5)  # first checkpoint
        env.feed_sequence(
            "events", keys=["a"], count=2, start_time=2.0, nbytes=50
        )
        env.run(until=10.0)
        checkpoints = [
            c.checkpoints for c in job.coordinator.completed if c.checkpoints
        ]
        assert len(checkpoints) >= 2
        first_total = sum(c.total_bytes for c in checkpoints[0].values())
        last = job.coordinator.completed[-1]
        last_delta = sum(c.delta_bytes for c in last.checkpoints.values())
        assert first_total > 0
        assert last_delta == 0  # nothing new right before the last checkpoint

    def test_suspend_stops_triggering(self):
        env = EngineEnv()
        env.topic("events", 2)
        env.feed_sequence("events", keys=["a"], count=5)
        job = self.make_job(env).start()
        job.coordinator.suspend()
        env.run(until=5.0)
        assert not job.coordinator.has_completed()
