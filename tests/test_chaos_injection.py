"""Unit tests for the fault-injection layer: degraded ports, partitions,
stalled disks, lossy links, crash-restart, retry policies, and the
heartbeat failure detector."""

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import make_rng
from repro.sim import Simulator, Interrupt
from repro.sim.flows import FlowLost, FlowScheduler, PortFailed, TransferFailed
from repro.cluster import Cluster, FailureDetector, NetworkPartitioned, ResourceMonitor
from repro.faults import (
    NO_RETRY,
    ALL_KINDS,
    ChaosController,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    with_retry,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cluster(sim):
    return Cluster(sim)


def make_machine(cluster, name="m0", **kwargs):
    defaults = dict(
        cores=4,
        memory=1000,
        nic_bandwidth=100.0,
        disks=2,
        disk_read_bandwidth=50.0,
        disk_write_bandwidth=25.0,
        disk_capacity=10_000,
        network_latency=0.0,
    )
    defaults.update(kwargs)
    return cluster.add_machine(name, **defaults)


def run_transfer(sim, cluster, src, dst, nbytes):
    result = {}

    def proc():
        try:
            yield cluster.transfer(src, dst, nbytes)
            result["done_at"] = sim.now
        except TransferFailed as exc:
            result["error"] = exc

    process = sim.process(proc())
    process.defused = True
    sim.run()
    return result


class TestDegradedPorts:
    def test_slow_link_scales_capacity(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.slow_link(b, scale=0.1)
        assert b.nic_in.degraded
        assert b.nic_in.effective_capacity == pytest.approx(10.0)
        result = run_transfer(sim, cluster, a, b, 100)
        assert result["done_at"] == pytest.approx(10.0)  # 100 B at 10 B/s

    def test_heal_link_restores_full_speed(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.slow_link(b, scale=0.1)
        cluster.heal_link(b)
        assert not b.nic_in.degraded
        result = run_transfer(sim, cluster, a, b, 100)
        assert result["done_at"] == pytest.approx(1.0)

    def test_slow_link_applies_mid_flight(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        result = {}

        def proc():
            yield cluster.transfer(a, b, 100)
            result["done_at"] = sim.now

        sim.process(proc())
        sim.run(until=0.5)  # 50 bytes done at full speed
        cluster.slow_link(b, scale=0.5)
        sim.run()
        # Remaining 50 bytes at 50 B/s: 0.5 + 1.0.
        assert result["done_at"] == pytest.approx(1.5)

    def test_extra_latency_adds_to_transfer(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.slow_link(b, scale=1.0, extra_latency=0.25)
        result = run_transfer(sim, cluster, a, b, 100)
        assert result["done_at"] == pytest.approx(1.25)

    def test_degrade_validates_arguments(self, sim, cluster):
        machine = make_machine(cluster)
        with pytest.raises(SimulationError):
            machine.nic_in.degrade(capacity_scale=-0.5)
        with pytest.raises(SimulationError):
            machine.nic_in.degrade(loss_probability=1.5)


class TestLossyLinks:
    def test_loss_draws_only_with_rng_installed(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.lossy_link(b, probability=1.0)
        # Without an installed loss stream, losses never fire (clean runs
        # make zero RNG draws).
        result = run_transfer(sim, cluster, a, b, 100)
        assert "error" not in result

    def test_certain_loss_fails_flow(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.scheduler.loss_rng = make_rng(7, "loss")
        cluster.lossy_link(b, probability=1.0)
        result = run_transfer(sim, cluster, a, b, 100)
        assert isinstance(result["error"], FlowLost)

    def test_loss_is_seed_deterministic(self):
        outcomes = []
        for _attempt in range(2):
            sim = Simulator()
            cluster = Cluster(sim)
            a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
            cluster.scheduler.loss_rng = make_rng(3, "loss")
            cluster.lossy_link(b, probability=0.5)
            drops = []
            for i in range(20):
                result = run_transfer(sim, cluster, a, b, 10)
                drops.append("error" in result)
            outcomes.append(drops)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])


class TestPartitions:
    def test_reachability_and_implicit_group(self, cluster):
        a, b, c = (make_machine(cluster, n) for n in "abc")
        cluster.partition([[a, b]])
        assert cluster.partitioned
        assert cluster.reachable(a, b)
        assert not cluster.reachable(a, c)  # c falls in the implicit group
        cluster.heal()
        assert cluster.reachable(a, c)

    def test_transfer_across_partition_fails(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.partition([[a], [b]])
        result = run_transfer(sim, cluster, a, b, 100)
        assert isinstance(result["error"], NetworkPartitioned)

    def test_in_flight_flow_severed(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        result = {}

        def proc():
            try:
                yield cluster.transfer(a, b, 100)
            except NetworkPartitioned as exc:
                result["error"] = exc
                result["at"] = sim.now

        process = sim.process(proc())
        process.defused = True
        sim.run(until=0.5)
        cluster.partition([[a], [b]])
        sim.run()
        assert result["at"] == pytest.approx(0.5)

    def test_intra_group_flows_survive(self, sim, cluster):
        a, b, c = (make_machine(cluster, n) for n in "abc")
        result = {}

        def proc():
            yield cluster.transfer(a, b, 100)
            result["done_at"] = sim.now

        sim.process(proc())
        sim.run(until=0.5)
        cluster.partition([[a, b], [c]])
        sim.run()
        assert result["done_at"] == pytest.approx(1.0)

    def test_duplicate_membership_rejected(self, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        with pytest.raises(SimulationError):
            cluster.partition([[a, b], [a]])


class TestStalledDisks:
    def test_stall_freezes_and_heal_resumes(self, sim, cluster):
        machine = make_machine(cluster)
        result = {}

        def proc():
            yield machine.disk_write(50)  # 25 B/s -> 2 s clean
            result["done_at"] = sim.now

        sim.process(proc())
        sim.run(until=1.0)  # halfway
        cluster.stall_disk(machine)
        sim.run(until=5.0)
        assert "done_at" not in result  # hung, not failed
        cluster.heal_disk(machine)
        sim.run()
        # 1 s of progress + 4 s stalled + 1 s remaining.
        assert result["done_at"] == pytest.approx(6.0)


class TestCrashRestart:
    def test_restart_reverses_fail(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.kill(b)
        assert not b.alive
        assert isinstance(run_transfer(sim, cluster, a, b, 100)["error"], PortFailed)
        cluster.restart(b)
        assert b.alive
        start = sim.now
        result = run_transfer(sim, cluster, a, b, 100)
        assert result["done_at"] == pytest.approx(start + 1.0)

    def test_kill_restart_kill(self, sim, cluster):
        """Regression: a second kill after a restart must behave like the
        first (ports fail again, compute slots poisoned again)."""
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.kill(b)
        cluster.restart(b)
        cluster.kill(b)
        assert not b.alive
        assert isinstance(run_transfer(sim, cluster, a, b, 100)["error"], PortFailed)
        cluster.restart(b)
        assert run_transfer(sim, cluster, a, b, 100).get("error") is None

    def test_fail_and_restart_are_idempotent(self, cluster):
        machine = make_machine(cluster)
        machine.restart()  # restart of an alive machine: no-op
        assert machine.alive
        machine.fail()
        machine.fail()
        assert not machine.alive
        machine.restart()
        machine.restart()
        assert machine.alive

    def test_wiped_restart_zeroes_disks(self, sim, cluster):
        machine = make_machine(cluster)
        sim.run(until=machine.disk_write(100))
        assert sum(d.used for d in machine.disks) == 100
        cluster.kill(machine)
        cluster.restart(machine, wipe_disks=True)
        assert sum(d.used for d in machine.disks) == 0

    def test_intact_restart_keeps_disks(self, sim, cluster):
        machine = make_machine(cluster)
        sim.run(until=machine.disk_write(100))
        cluster.kill(machine)
        cluster.restart(machine)
        assert sum(d.used for d in machine.disks) == 100

    def test_restart_listeners_see_wipe_flag(self, cluster):
        machine = make_machine(cluster)
        seen = []
        machine.on_restart(lambda m, wiped: seen.append((m.name, wiped)))
        machine.fail()
        machine.restart(wipe_disks=True)
        machine.fail()
        machine.restart()
        assert seen == [("m0", True), ("m0", False)]

    def test_compute_interrupt_releases_core_slot(self, sim, cluster):
        """Regression: interrupting a process parked on a full core queue
        must not leak the slot it was granted (or waiting on)."""
        machine = make_machine(cluster, cores=1)
        holder = sim.process(machine.compute(5.0))
        waiter = sim.process(machine.compute(1.0))
        sim.run(until=1.0)
        waiter.defused = True
        waiter.interrupt("cancelled")
        sim.run(until=6.0)
        late = sim.process(machine.compute(1.0))
        sim.run()
        assert holder.ok and late.ok
        assert sim.now == pytest.approx(7.0)


class TestRetryPolicy:
    def test_delays_are_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.3, jitter=0.0)
        assert [policy.delay(i) for i in (1, 2, 3, 4)] == pytest.approx(
            [0.1, 0.2, 0.3, 0.3]
        )

    def test_jitter_is_deterministic(self):
        rng = make_rng(5, "retry")
        policy = RetryPolicy(attempts=3, base_delay=0.1, jitter=0.5, rng=rng)
        first = policy.delay(1)
        assert 0.1 <= first <= 0.15
        policy2 = RetryPolicy(
            attempts=3, base_delay=0.1, jitter=0.5, rng=make_rng(5, "retry")
        )
        assert policy2.delay(1) == first

    def test_with_retry_recovers_from_transient_failure(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        policy = RetryPolicy(attempts=4, base_delay=0.5, jitter=0.0)
        cluster.partition([[a], [b]])
        result = {}

        def healer():
            yield sim.timeout(0.7)
            cluster.heal()

        def proc():
            yield from with_retry(
                sim, lambda: cluster.transfer(a, b, 100), policy
            )
            result["done_at"] = sim.now

        sim.process(healer())
        sim.process(proc())
        sim.run()
        # Attempt 1 at t=0 fails; retry after 0.5 fails; retry after
        # 1.0 more (t=1.5, healed) succeeds in 1 s.
        assert result["done_at"] == pytest.approx(2.5)

    def test_with_retry_exhausts_and_raises(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        cluster.partition([[a], [b]])
        policy = RetryPolicy(attempts=2, base_delay=0.1, jitter=0.0)
        result = {}

        def proc():
            try:
                yield from with_retry(sim, lambda: cluster.transfer(a, b, 1), policy)
            except NetworkPartitioned:
                result["raised_at"] = sim.now

        process = sim.process(proc())
        process.defused = True
        sim.run()
        assert result["raised_at"] == pytest.approx(0.1)

    def test_no_retry_is_single_shot(self):
        assert NO_RETRY.attempts == 1
        assert not NO_RETRY.enabled


class TestFailureDetector:
    def test_suspects_dead_machine_then_unsuspects_on_restart(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        detector = FailureDetector(
            cluster.sim, cluster, heartbeat_interval=0.5, suspicion_timeout=1.0
        )
        detector.start()
        sim.run(until=2.0)
        assert not detector.suspected()
        cluster.kill(b)
        sim.run(until=4.0)
        assert detector.is_suspected(b)
        assert not detector.is_suspected(a)
        cluster.restart(b)
        sim.run(until=5.0)
        assert not detector.suspected()
        events = [(name, event) for _t, name, event in detector.history]
        assert events == [("b", "suspect"), ("b", "unsuspect")]

    def test_partition_looks_like_death_from_home(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        detector = FailureDetector(
            cluster.sim,
            cluster,
            home=a,
            heartbeat_interval=0.5,
            suspicion_timeout=1.0,
        )
        detector.start()
        cluster.partition([[a], [b]])
        sim.run(until=2.0)
        assert detector.is_suspected(b)
        assert b.alive  # false suspicion: the machine is fine
        cluster.heal()
        sim.run(until=3.0)
        assert not detector.is_suspected(b)

    def test_callbacks_fire(self, sim, cluster):
        _a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        detector = FailureDetector(
            cluster.sim, cluster, heartbeat_interval=0.5, suspicion_timeout=1.0
        )
        calls = []
        detector.on_suspect.append(lambda m: calls.append(("suspect", m.name)))
        detector.on_unsuspect.append(lambda m: calls.append(("unsuspect", m.name)))
        detector.start()
        cluster.kill(b)
        sim.run(until=2.0)
        cluster.restart(b)
        sim.run(until=3.0)
        assert calls == [("suspect", "b"), ("unsuspect", "b")]


class TestMonitorUnderFailures:
    def test_sample_skips_dead_machines(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        monitor = ResourceMonitor(sim, cluster, interval=1.0)
        monitor.start()
        sim.run(until=1.5)
        cluster.kill(b)
        sim.run(until=2.5)
        first, second = monitor.samples[0], monitor.samples[1]
        assert first.alive_machines == 2
        assert second.alive_machines == 1
        cluster.restart(b)
        sim.run(until=3.5)
        assert monitor.samples[2].alive_machines == 2

    def test_alive_machines_gauge_emitted(self, cluster):
        from repro.obs.tracer import Tracer

        sim = Simulator(tracer=Tracer())
        cluster = Cluster(sim)
        make_machine(cluster, "a")
        monitor = ResourceMonitor(sim, cluster, interval=1.0)
        monitor.start()
        sim.run(until=2.5)
        gauge = sim.tracer.counters["cluster.alive_machines"]
        assert [value for _t, value, _total in gauge.samples] == [1, 1]


class TestFaultPlan:
    def test_events_validated_and_sorted(self):
        with pytest.raises(SimulationError):
            FaultEvent(-1.0, "partition", ["a"], 1.0)
        with pytest.raises(SimulationError):
            FaultEvent(1.0, "meteor-strike", ["a"], 1.0)
        plan = FaultPlan(
            [
                FaultEvent(5.0, "partition", ["a"], 1.0),
                FaultEvent(2.0, "disk-stall", ["b"], 2.0),
            ],
            seed=9,
        )
        assert [e.time for e in plan.events] == [2.0, 5.0]
        assert plan.horizon == pytest.approx(6.0)
        assert plan.kinds == ["disk-stall", "partition"]  # schedule order

    def test_generate_is_deterministic_and_respects_protect(self):
        names = ["w-0", "w-1", "w-2", "w-3"]
        one = FaultPlan.generate(11, names, count=6, protect=("w-0",))
        two = FaultPlan.generate(11, names, count=6, protect=("w-0",))
        assert [
            (e.time, e.kind, e.targets, e.duration, e.params) for e in one.events
        ] == [(e.time, e.kind, e.targets, e.duration, e.params) for e in two.events]
        assert all("w-0" not in e.targets for e in one.events)
        other = FaultPlan.generate(12, names, count=6, protect=("w-0",))
        assert [(e.time, e.kind) for e in one.events] != [
            (e.time, e.kind) for e in other.events
        ]

    def test_generated_events_are_sequential(self):
        plan = FaultPlan.generate(4, ["w-0", "w-1", "w-2"], count=8)
        clock = 0.0
        for event in plan.events:
            assert event.time >= clock
            clock = event.time + event.duration
        assert set(plan.kinds) <= set(ALL_KINDS)


class TestChaosController:
    def test_injects_and_reverts_in_order(self, sim, cluster):
        a, b = make_machine(cluster, "a"), make_machine(cluster, "b")
        plan = FaultPlan(
            [
                FaultEvent(1.0, "crash-restart", ["b"], 2.0, {"wipe": False}),
                FaultEvent(4.0, "partition", ["b"], 1.0),
            ],
            seed=2,
        )
        controller = ChaosController(sim, cluster, plan)
        controller.start()
        sim.run(until=2.0)
        assert not b.alive and controller.active
        sim.run(until=3.5)
        assert b.alive
        sim.run(until=4.5)
        assert not cluster.reachable(a, b)
        sim.run(until=6.0)
        assert cluster.reachable(a, b)
        assert controller.done and controller.quiesced()
        assert [(kind, action) for _t, kind, _targets, action in controller.log] == [
            ("crash-restart", "inject"),
            ("crash-restart", "revert"),
            ("partition", "inject"),
            ("partition", "revert"),
        ]

    def test_installs_seeded_loss_stream(self, sim, cluster):
        make_machine(cluster, "a")
        plan = FaultPlan([FaultEvent(1.0, "lossy-link", ["a"], 1.0)], seed=5)
        assert cluster.scheduler.loss_rng is None
        ChaosController(sim, cluster, plan)
        assert cluster.scheduler.loss_rng is not None

    def test_start_twice_rejected(self, sim, cluster):
        make_machine(cluster, "a")
        plan = FaultPlan([FaultEvent(1.0, "disk-stall", ["a"], 1.0)], seed=5)
        controller = ChaosController(sim, cluster, plan)
        controller.start()
        with pytest.raises(SimulationError):
            controller.start()


class TestAliveProcessRegistry:
    def test_tracks_only_live_processes(self, sim):
        def short():
            yield sim.timeout(1.0)

        def long():
            yield sim.timeout(10.0)

        sim.process(short(), name="short")
        survivor = sim.process(long(), name="long")
        sim.run(until=2.0)
        alive = sim.alive_processes()
        assert alive == [survivor]
