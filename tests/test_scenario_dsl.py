"""Tests for the declarative scenario DSL (specs, validation, sweeps)."""

import json

import pytest

from repro.common.errors import ReproError
from repro.experiments.scenario import (
    ReconfigureAction,
    Scenario,
    StreamScenario,
    build_keys,
    build_rate,
    expand_sweep,
    load_scenarios,
)
from repro.nexmark import (
    DiurnalRate,
    FlashCrowdRate,
    HotKeys,
    TriangularRate,
    UniformKeys,
    ZipfKeys,
)


class TestBuildRate:
    def test_bare_number_is_a_constant_rate(self):
        assert build_rate(1500) == 1500.0
        assert build_rate(2.5e6) == 2.5e6

    def test_constant_kind(self):
        assert build_rate({"kind": "constant", "rate": 4096}) == 4096.0

    def test_triangular_kind(self):
        rate = build_rate(
            {"kind": "triangular", "floor": 1e6, "ceiling": 8e6,
             "step": 0.5e6, "period": 10.0}
        )
        assert isinstance(rate, TriangularRate)
        assert rate(0.0) == 1e6

    def test_diurnal_kind(self):
        rate = build_rate({"kind": "diurnal", "base": 1e6, "peak": 4e6})
        assert isinstance(rate, DiurnalRate)
        assert rate(0.0) == pytest.approx(1e6)
        assert rate(43_200.0) == pytest.approx(4e6)

    def test_flash_crowd_composes_over_any_base(self):
        rate = build_rate(
            {
                "kind": "flash-crowd",
                "base": {"kind": "diurnal", "base": 1e6, "peak": 2e6,
                         "period": 100.0},
                "bursts": [[10.0, 5.0, 3.0]],
            }
        )
        assert isinstance(rate, FlashCrowdRate)
        assert rate(12.0) == pytest.approx(3.0 * rate.base(12.0))
        assert rate(20.0) == pytest.approx(rate.base(20.0))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown rate profile"):
            build_rate({"kind": "sawtooth", "rate": 1.0})

    def test_missing_field_rejected(self):
        with pytest.raises(ReproError, match="missing field"):
            build_rate({"kind": "flash-crowd", "bursts": []})

    def test_unexpected_field_rejected(self):
        with pytest.raises(ReproError):
            build_rate({"kind": "triangular", "floor": 1.0, "ceiling": 2.0,
                        "step": 0.5, "period": 1.0, "typo": 3})


class TestBuildKeys:
    def test_uniform(self):
        keys = build_keys({"kind": "uniform", "key_space": 500})
        assert isinstance(keys, UniformKeys)
        assert keys.key_space == 500

    def test_zipf(self):
        keys = build_keys({"kind": "zipf", "key_space": 1000, "exponent": 1.2})
        assert isinstance(keys, ZipfKeys)
        assert keys.exponent == 1.2

    def test_hot_set_composes_over_base(self):
        keys = build_keys(
            {
                "kind": "hot-set",
                "base": {"kind": "zipf", "key_space": 1000, "exponent": 1.1},
                "hot_count": 8,
                "hot_fraction": 0.7,
                "churn_interval": 30.0,
            }
        )
        assert isinstance(keys, HotKeys)
        assert keys.key_space == 1000
        assert keys.hot_fraction == 0.7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown key distribution"):
            build_keys({"kind": "pareto", "key_space": 10})

    def test_non_dict_rejected(self):
        with pytest.raises(ReproError):
            build_keys("zipf")


class TestScenarioSchema:
    def minimal(self, **overrides):
        data = {"name": "t"}
        data.update(overrides)
        return data

    def test_name_is_required(self):
        with pytest.raises(ReproError, match="name"):
            Scenario.from_dict({"sut": "rhino"})

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ReproError, match="unknown fields"):
            Scenario.from_dict(self.minimal(durationn=5.0))

    def test_unknown_stream_field_rejected(self):
        with pytest.raises(ReproError, match="unknown fields"):
            Scenario.from_dict(
                self.minimal(streams={"bids": {"rrate": 1.0}})
            )

    def test_bad_stream_rate_rejected_eagerly(self):
        with pytest.raises(ReproError, match="unknown rate profile"):
            Scenario.from_dict(
                self.minimal(streams={"bids": {"rate": {"kind": "nope"}}})
            )

    def test_unknown_action_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown action kind"):
            Scenario.from_dict(
                self.minimal(actions=[{"at": 1.0, "kind": "explode"}])
            )

    def test_action_after_duration_rejected(self):
        with pytest.raises(ReproError, match="after the scenario"):
            Scenario.from_dict(
                self.minimal(duration=10.0, actions=[{"at": 10.0, "kind": "drain"}])
            )

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ReproError, match="duration"):
            Scenario.from_dict(self.minimal(duration=0.0))

    def test_round_trips_through_dict(self):
        scenario = Scenario.from_dict(
            {
                "name": "rt",
                "sut": "megaphone",
                "duration": 20.0,
                "streams": {
                    "persons": {
                        "rate": {"kind": "constant", "rate": 1e6},
                        "keys": {"kind": "zipf", "key_space": 100,
                                 "exponent": 1.3},
                        "keys_per_tick": 4,
                    }
                },
                "actions": [
                    {"at": 5.0, "kind": "rebalance", "params": {"moves": [[0, 1]]}}
                ],
            }
        )
        again = Scenario.from_dict(scenario.to_dict())
        assert again.to_dict() == scenario.to_dict()
        assert isinstance(again.streams["persons"], StreamScenario)
        assert isinstance(again.actions[0], ReconfigureAction)

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "s.json"
        scenario = Scenario.from_dict({"name": "disk", "seed": 7})
        scenario.save(path)
        loaded = Scenario.load(path)
        assert loaded.name == "disk"
        assert loaded.seed == 7

    def test_committed_million_user_scenario_parses(self):
        import pathlib

        root = pathlib.Path(__file__).parent.parent
        scenario = Scenario.load(root / "examples" / "scenarios" / "million_user.json")
        assert scenario.query == "nbq8"
        assert scenario.streams["persons"].keys["kind"] == "zipf"
        assert scenario.streams["persons"].keys["key_space"] == 1_000_000
        assert scenario.actions[0].kind == "drain"


class TestSweeps:
    def base(self):
        return {
            "name": "sweep",
            "duration": 10.0,
            "streams": {"bids": {"keys": {"kind": "zipf", "key_space": 100,
                                          "exponent": 1.1}}},
        }

    def test_cross_product_and_names(self):
        points = expand_sweep(
            self.base(),
            {"seed": [1, 2, 3], "streams.bids.keys.exponent": [1.05, 1.3]},
        )
        assert len(points) == 6
        names = {p.name for p in points}
        assert "sweep__seed=1_exponent=1.05" in names
        assert len(names) == 6
        exponents = {p.streams["bids"].keys["exponent"] for p in points}
        assert exponents == {1.05, 1.3}

    def test_accepts_scenario_instance_as_base(self):
        base = Scenario.from_dict(self.base())
        points = expand_sweep(base, {"seed": [5]})
        assert points[0].seed == 5

    def test_empty_axis_rejected(self):
        with pytest.raises(ReproError, match="non-empty"):
            expand_sweep(self.base(), {"seed": []})

    def test_sweep_point_is_validated(self):
        with pytest.raises(ReproError, match="duration"):
            expand_sweep(self.base(), {"duration": [-1.0]})

    def test_load_scenarios_handles_sweep_files(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps({"base": self.base(), "axes": {"seed": [1, 2]}})
        )
        points = load_scenarios(path)
        assert [p.seed for p in points] == [1, 2]

    def test_load_scenarios_handles_single_files(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(self.base()))
        points = load_scenarios(path)
        assert len(points) == 1
        assert points[0].name == "sweep"
