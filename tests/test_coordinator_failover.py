"""Coordinator-crash failover: the PR 5 tentpole end to end.

Phase-targeted crashes kill the coordinator exactly when the protocol
journals a specific record kind -- one test per handover phase, including
``origin-drained`` (which only a planned handover with a live origin can
reach) and the middle of a chain-replication hop.  After every crash the
invariant harness must hold AND the journal replay must structurally
equal the live-state snapshot captured at the crash instant.
"""

import json

import pytest

from repro.experiments.scenarios.chaos import run_chaos, run_chaos_sweep
from repro.faults import COORDINATOR_CRASH
from repro.obs import failover_breakdown
from repro.obs.tracer import Tracer

from tests.test_chaos import canonical_trace


def assert_recovered(result, expect_failover=True):
    assert result.violations == []
    assert result.counts == result.expected
    if expect_failover:
        assert result.failover_stats, "the coordinator never failed over"
    for replayed, snapshot in result.replay_checks:
        assert replayed == snapshot, (
            "journal replay diverged from the crash-instant snapshot:\n"
            f"replayed={json.dumps(replayed, sort_keys=True)}\n"
            f"snapshot={json.dumps(snapshot, sort_keys=True)}"
        )


class TestFailoverSmoke:
    def test_timed_coordinator_crash_recovers(self):
        result = run_chaos(7, coordinator_failover=True, crash_at_time=6.0)
        assert_recovered(result)
        for stats in result.failover_stats:
            assert set(stats) == {"detect", "replay", "resume", "total"}
            assert stats["detect"] == pytest.approx(0.5)
            assert stats["total"] >= stats["detect"]

    def test_failover_disabled_leaves_no_control_plane_trace(self):
        tracer = Tracer()
        result = run_chaos(7, tracer=tracer)
        assert result.ok
        assert result.failover_stats == []
        assert not [s for s in tracer.spans if s.track == "failover"]
        assert not [e for e in tracer.events if e.track == "failover"]


class TestPhaseTargetedCrashes:
    """Satellite (c): kill the coordinator at every protocol phase."""

    #: Phases a failure-recovery handover journals (seed 3's plan causes
    #: a crash-restart whose recovery drives one).
    RECOVERY_PHASES = (
        "handover.accepted",
        "handover.prepared",
        "handover.marker",
        "handover.state-shipped",
        "handover.target-resumed",
        "handover.ack",
    )

    @pytest.mark.parametrize("record_kind", RECOVERY_PHASES)
    def test_crash_during_recovery_handover(self, record_kind):
        result = run_chaos(
            3, coordinator_failover=True, crash_at_record=record_kind
        )
        assert_recovered(result)
        assert len(result.replay_checks) == 1

    @pytest.mark.parametrize(
        "record_kind",
        ("handover.origin-drained", "handover.marker"),
    )
    def test_crash_during_planned_rebalance(self, record_kind):
        # origin-drained needs a live origin: only planned handovers
        # (rebalance) drain one, so drive a rebalance instead of a fault.
        result = run_chaos(
            5,
            coordinator_failover=True,
            fault_count=0,
            rebalance_at=4.0,
            crash_at_record=record_kind,
        )
        assert_recovered(result)
        assert len(result.replay_checks) == 1

    def test_crash_mid_chain_replication_hop(self):
        # Probe run: find a real chain-replication hop on the timeline,
        # then replay the same seed and crash at that hop's midpoint.
        tracer = Tracer()
        probe = run_chaos(3, coordinator_failover=True, tracer=tracer)
        assert probe.ok
        hops = [
            s
            for s in tracer.spans
            if s.name == "replicate.hop"
            and s.end is not None
            and s.end - s.start > 1e-4
        ]
        assert hops, "the probe run replicated nothing"
        midpoint = (hops[0].start + hops[0].end) / 2
        result = run_chaos(
            3, coordinator_failover=True, crash_at_time=midpoint
        )
        assert_recovered(result)


class TestFailoverDeterminism:
    def test_failover_run_replays_bit_identically(self):
        runs = []
        for _ in range(2):
            tracer = Tracer()
            result = run_chaos(
                3, coordinator_failover=True, crash_at_time=6.0, tracer=tracer
            )
            runs.append((result, canonical_trace(tracer)))
        (first, first_trace), (second, second_trace) = runs
        assert_recovered(first)
        assert first.counts == second.counts
        assert first.duration == second.duration
        assert first.failover_stats == second.failover_stats
        assert json.dumps(first.replay_checks, sort_keys=True) == json.dumps(
            second.replay_checks, sort_keys=True
        )
        assert first_trace == second_trace

    def test_failover_breakdown_phases_sum_to_total(self):
        tracer = Tracer()
        result = run_chaos(
            7, coordinator_failover=True, crash_at_time=6.0, tracer=tracer
        )
        assert_recovered(result)
        breakdowns = failover_breakdown(tracer)
        assert len(breakdowns) == len(result.failover_stats)
        for phases, stats in zip(breakdowns, result.failover_stats):
            total = phases["detect"] + phases["replay"] + phases["resume"]
            assert total == pytest.approx(phases["total"], abs=1e-9)
            assert phases["total"] == pytest.approx(stats["total"], abs=1e-9)


@pytest.mark.chaos
class TestCoordinatorChaosSweep:
    """The wide sweep with coordinator-crash in the fault mix."""

    def test_sweep_of_25_seeds_with_coordinator_crashes(self):
        results = run_chaos_sweep(range(25), coordinator_failover=True)
        failures = [r.row() for r in results if not r.ok]
        assert not failures, f"failover chaos sweep failures: {failures}"
        exercised = {kind for r in results for kind in r.plan.kinds}
        assert COORDINATOR_CRASH in exercised
        # Every failover's replay must reproduce the crash snapshot.
        for result in results:
            assert_recovered(result, expect_failover=False)
        assert any(r.failover_stats for r in results)
