"""Unit tests for the max-min fair flow scheduler."""

import pytest

from repro.sim import Simulator, Port, FlowScheduler
from repro.sim.flows import PortFailed


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def scheduler(sim):
    return FlowScheduler(sim)


def run_transfer(sim, scheduler, nbytes, ports, latency=0.0):
    event = scheduler.transfer(nbytes, ports, latency=latency)
    sim.run(until=event)
    return sim.now


class TestSingleFlow:
    def test_duration_is_size_over_capacity(self, sim, scheduler):
        port = Port("nic", 100.0)
        finished_at = run_transfer(sim, scheduler, 1000.0, [port])
        assert finished_at == pytest.approx(10.0)

    def test_bottleneck_is_slowest_port(self, sim, scheduler):
        fast = Port("fast", 1000.0)
        slow = Port("slow", 10.0)
        finished_at = run_transfer(sim, scheduler, 100.0, [fast, slow])
        assert finished_at == pytest.approx(10.0)

    def test_latency_added_after_drain(self, sim, scheduler):
        port = Port("nic", 100.0)
        finished_at = run_transfer(sim, scheduler, 100.0, [port], latency=0.5)
        assert finished_at == pytest.approx(1.5)

    def test_zero_byte_transfer_takes_latency_only(self, sim, scheduler):
        finished_at = run_transfer(sim, scheduler, 0, [], latency=0.25)
        assert finished_at == pytest.approx(0.25)


class TestFairSharing:
    def test_two_flows_share_port_equally(self, sim, scheduler):
        port = Port("nic", 100.0)
        first = scheduler.transfer(500.0, [port])
        second = scheduler.transfer(500.0, [port])
        sim.run(until=first)
        # Both share 50 B/s: each 500 B flow takes 10 s.
        assert sim.now == pytest.approx(10.0)
        sim.run(until=second)
        assert sim.now == pytest.approx(10.0)

    def test_short_flow_finishes_then_long_flow_speeds_up(self, sim, scheduler):
        port = Port("nic", 100.0)
        long_flow = scheduler.transfer(1000.0, [port])
        short_flow = scheduler.transfer(100.0, [port])
        sim.run(until=short_flow)
        # Shared at 50 B/s until 100 B drain: t = 2 s.
        assert sim.now == pytest.approx(2.0)
        sim.run(until=long_flow)
        # Long flow moved 100 B by t=2, then 900 B at full 100 B/s.
        assert sim.now == pytest.approx(11.0)

    def test_late_arrival_slows_down_existing_flow(self, sim, scheduler):
        port = Port("nic", 100.0)
        first = scheduler.transfer(1000.0, [port])

        def late():
            yield sim.timeout(5.0)
            second = scheduler.transfer(250.0, [port])
            yield second
            return sim.now

        late_process = sim.process(late())
        sim.run(until=late_process)
        # Second flow gets 50 B/s from t=5: 250 B take 5 s.
        assert late_process.value == pytest.approx(10.0)
        sim.run(until=first)
        # First: 500 B by t=5, 250 B more at 50 B/s until t=10, 250 B at 100.
        assert sim.now == pytest.approx(12.5)

    def test_max_min_respects_multiple_bottlenecks(self, sim, scheduler):
        # Flow A uses only port X; flows B and C share port Y; all cross Z.
        port_x = Port("x", 100.0)
        port_y = Port("y", 40.0)
        port_z = Port("z", 1000.0)
        flow_a = scheduler.transfer(300.0, [port_x, port_z])
        scheduler.transfer(1000.0, [port_y, port_z])
        scheduler.transfer(1000.0, [port_y, port_z])
        # B and C are limited to 20 B/s each by Y; A gets min(100, remaining Z).
        sim.run(until=flow_a)
        assert sim.now == pytest.approx(3.0)

    def test_allocation_is_work_conserving_on_single_port(self, sim, scheduler):
        port = Port("nic", 100.0)
        done = [scheduler.transfer(200.0, [port]) for _ in range(4)]
        for event in done:
            sim.run(until=event)
        # 800 B through a 100 B/s port: exactly 8 s regardless of sharing.
        assert sim.now == pytest.approx(8.0)


class TestPortFailure:
    def test_failing_port_fails_inflight_transfer(self, sim, scheduler):
        port = Port("nic", 100.0)

        def proc():
            try:
                yield scheduler.transfer(1000.0, [port])
            except PortFailed:
                return ("failed", sim.now)

        process = sim.process(proc())

        def killer():
            yield sim.timeout(3.0)
            scheduler.fail_port(port)

        sim.process(killer())
        sim.run(until=process)
        assert process.value == ("failed", 3.0)

    def test_transfer_on_disabled_port_fails_immediately(self, sim, scheduler):
        port = Port("nic", 100.0)
        scheduler.fail_port(port)

        def proc():
            try:
                yield scheduler.transfer(10.0, [port])
            except PortFailed:
                return "rejected"

        process = sim.process(proc())
        sim.run(until=process)
        assert process.value == "rejected"

    def test_unrelated_flow_survives_port_failure(self, sim, scheduler):
        healthy = Port("ok", 100.0)
        doomed = Port("bad", 100.0)
        survivor = scheduler.transfer(500.0, [healthy])
        victim = scheduler.transfer(500.0, [doomed])
        victim.defused = True

        def killer():
            yield sim.timeout(1.0)
            scheduler.fail_port(doomed)

        sim.process(killer())
        sim.run(until=survivor)
        assert sim.now == pytest.approx(5.0)


class TestAccounting:
    def test_port_bytes_accumulate(self, sim, scheduler):
        port = Port("nic", 100.0)
        event = scheduler.transfer(400.0, [port])
        sim.run(until=event)
        assert scheduler.port_bytes[port] == pytest.approx(400.0)

    def test_port_rate_reports_current_allocation(self, sim, scheduler):
        port = Port("nic", 100.0)
        scheduler.transfer(1000.0, [port])
        scheduler.transfer(1000.0, [port])
        assert scheduler.port_rate(port) == pytest.approx(100.0)

    def test_active_flows_snapshot(self, sim, scheduler):
        port = Port("nic", 100.0)
        scheduler.transfer(1000.0, [port], tag="replication")
        flows = scheduler.active_flows()
        assert len(flows) == 1
        tag, remaining, rate = flows[0]
        assert tag == "replication"
        assert remaining == pytest.approx(1000.0)
        assert rate == pytest.approx(100.0)


class TestIncrementalEngine:
    def test_dense_flag_selects_reference_engine(self, sim):
        dense = FlowScheduler(sim, dense=True)
        assert dense.dense
        port = Port("nic", 100.0)
        event = dense.transfer(500.0, [port])
        sim.run(until=event)
        assert sim.now == pytest.approx(5.0)

    def test_kernel_queue_stays_bounded_by_active_flows(self, sim, scheduler):
        """Regression: the old engine leaked one Timeout per reallocation.

        A long chain of arrivals and completions must not accumulate stale
        wake-up entries; the kernel queue and the scheduler's due-time heap
        stay O(active flows) throughout.
        """
        port = Port("nic", 1e6)
        high_water = {"queue": 0, "heap": 0}

        def churn():
            for round_no in range(100):
                events = [
                    scheduler.transfer(1e4 * (1 + i + round_no), [port])
                    for i in range(5)
                ]
                yield sim.all_of(events)
                high_water["queue"] = max(high_water["queue"], len(sim._queue))
                high_water["heap"] = max(
                    high_water["heap"], len(scheduler._kernel_heap)
                )

        sim.process(churn())
        sim.run()
        # 5 concurrent flows -> a handful of live entries, never hundreds.
        assert high_water["queue"] <= 20
        assert high_water["heap"] <= 6
        assert not scheduler.active_flows()

    def test_same_instant_burst_coalesces_to_one_solve(self, sim, scheduler):
        """N same-timestamp transfers trigger a single water-filling pass."""
        solves = {"count": 0}
        original = scheduler._waterfill

        def counting(flows):
            solves["count"] += 1
            return original(flows)

        scheduler._waterfill = counting
        port = Port("nic", 1e6)

        def burst():
            events = [scheduler.transfer(1e5, [port]) for _ in range(50)]
            yield sim.all_of(events)

        sim.process(burst())
        sim.run()
        # One coalesced solve for the burst, plus completion re-solves
        # (all 50 finish at the same instant: one more).
        assert solves["count"] == 2

    def test_component_local_solve_leaves_other_components_untouched(
        self, sim, scheduler
    ):
        """A new flow on port B must not re-solve port A's component."""
        port_a = Port("a", 1e6)
        port_b = Port("b", 1e6)
        scheduler.transfer(1e6, [port_a])
        sim.run(until=0.1)
        solved = []
        original = scheduler._waterfill

        def recording(flows):
            solved.extend(f.tag for f in flows)
            return original(flows)

        scheduler._waterfill = recording

        def second():
            yield scheduler.transfer(1e5, [port_b], tag="b-flow")

        sim.process(second())
        sim.run(until=0.2)
        assert "b-flow" in solved
        assert len(solved) == 1  # port A's flow was never re-solved

    def test_queries_flush_pending_solve_mid_instant(self, sim, scheduler):
        """active_flows()/port_rate() see current rates before instant end."""
        port = Port("nic", 100.0)
        scheduler.transfer(1000.0, [port])
        assert scheduler.port_rate(port) == pytest.approx(100.0)
        scheduler.transfer(1000.0, [port])
        flows = scheduler.active_flows()
        assert sorted(rate for _tag, _remaining, rate in flows) == [50.0, 50.0]

    def test_batched_port_failure_matches_sequential(self, sim):
        """fail_ports() fails the same flows as one-by-one fail_port()."""
        logs = []
        for batched in (False, True):
            s = Simulator()
            scheduler = FlowScheduler(s)
            ports = [Port(f"p{i}", 100.0) for i in range(3)]
            events = [
                scheduler.transfer(1e4, [ports[i], ports[(i + 1) % 3]])
                for i in range(3)
            ]
            for event in events:
                event.defused = True
            if batched:
                scheduler.fail_ports(ports[:2])
            else:
                scheduler.fail_port(ports[0])
                scheduler.fail_port(ports[1])
            s.run()
            logs.append([(e.ok, type(e._exception).__name__) for e in events])
        assert logs[0] == logs[1]
        assert logs[0] == [(False, "PortFailed")] * 3
