"""Unit tests for Resource (semaphore) and Store (bounded FIFO queue)."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Simulator, Resource, Store
from repro.sim.resources import StoreClosed


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, 0)

    def test_grants_up_to_capacity_immediately(self, sim):
        resource = Resource(sim, 2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        assert first.triggered and second.triggered
        assert not third.triggered

    def test_release_wakes_fifo_waiter(self, sim):
        resource = Resource(sim, 1)
        order = []

        def worker(tag, hold):
            yield resource.request()
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            resource.release()

        sim.process(worker("a", 5.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 5.0), ("c", 6.0)]

    def test_release_without_request_raises(self, sim):
        resource = Resource(sim, 1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_available_accounting(self, sim):
        resource = Resource(sim, 3)
        resource.request()
        resource.request()
        assert resource.available == 1
        resource.release()
        assert resource.available == 2


class TestStore:
    def test_put_get_fifo(self, sim):
        store = Store(sim)
        results = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                results.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert results == [0, 1, 2]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        log = []

        def consumer():
            item = yield store.get()
            log.append((item, sim.now))

        def producer():
            yield sim.timeout(4.0)
            yield store.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert log == [("x", 4.0)]

    def test_put_blocks_at_capacity(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", sim.now))
            yield store.put("b")
            log.append(("put-b", sim.now))

        def consumer():
            yield sim.timeout(3.0)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert log == [("put-a", 0.0), ("put-b", 3.0)]

    def test_direct_handoff_respects_waiting_consumer(self, sim):
        store = Store(sim, capacity=1)
        received = []

        def consumer(tag):
            item = yield store.get()
            received.append((tag, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield store.put(1)
            yield store.put(2)

        sim.process(producer())
        sim.run()
        assert received == [("first", 1), ("second", 2)]

    def test_drain_returns_all_items(self, sim):
        store = Store(sim)
        for i in range(4):
            store.put(i)
        sim.run()
        assert store.drain() == [0, 1, 2, 3]
        assert len(store) == 0

    def test_closed_store_rejects_put(self, sim):
        store = Store(sim)
        store.close()
        with pytest.raises(SimulationError):
            store.put(1)

    def test_closed_store_fails_pending_get(self, sim):
        store = Store(sim)

        def consumer():
            try:
                yield store.get()
            except StoreClosed:
                return "closed"

        process = sim.process(consumer())

        def closer():
            yield sim.timeout(1.0)
            store.close()

        sim.process(closer())
        sim.run()
        assert process.value == "closed"

    def test_closed_store_drains_remaining_items_first(self, sim):
        store = Store(sim)
        store.put("leftover")
        store.close()

        def consumer():
            item = yield store.get()
            return item

        process = sim.process(consumer())
        sim.run()
        assert process.value == "leftover"
