"""Unit tests for the mini distributed file system."""

import pytest

from repro.common.errors import StorageError
from repro.sim import Simulator
from repro.cluster import Cluster
from repro.storage.dfs import DistributedFileSystem


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def setup(sim):
    cluster = Cluster(sim)
    machines = cluster.add_machines(
        4,
        prefix="dn",
        nic_bandwidth=100.0,
        disks=1,
        disk_read_bandwidth=100.0,
        disk_write_bandwidth=100.0,
        disk_capacity=1_000_000,
        network_latency=0.0,
    )
    dfs = DistributedFileSystem(
        sim, cluster, machines, block_size=100, replication=2, seed=7
    )
    return cluster, machines, dfs


class TestWrite:
    def test_write_creates_file_with_blocks(self, sim, setup):
        _cluster, machines, dfs = setup
        write = dfs.write("/ckpt/1", 250, machines[0])
        sim.run(until=write)
        meta = dfs.namenode.lookup("/ckpt/1")
        assert [b.size for b in meta.blocks] == [100, 100, 50]
        assert meta.size == 250

    def test_first_replica_is_local_to_writer(self, sim, setup):
        _cluster, machines, dfs = setup
        write = dfs.write("/f", 300, machines[1])
        sim.run(until=write)
        meta = dfs.namenode.lookup("/f")
        for block in meta.blocks:
            assert block.replicas[0] is machines[1]

    def test_replication_factor_respected(self, sim, setup):
        _cluster, machines, dfs = setup
        write = dfs.write("/f", 100, machines[0])
        sim.run(until=write)
        block = dfs.namenode.lookup("/f").blocks[0]
        assert len(block.replicas) == 2
        assert len(set(m.name for m in block.replicas)) == 2

    def test_write_charges_disk_space_on_replicas(self, sim, setup):
        _cluster, machines, dfs = setup
        write = dfs.write("/f", 200, machines[0])
        sim.run(until=write)
        assert sum(m.disk_used for m in machines) == 400  # 2 replicas

    def test_write_takes_disk_and_network_time(self, sim, setup):
        _cluster, machines, dfs = setup
        write = dfs.write("/f", 100, machines[0], parallelism=1)
        sim.run(until=write)
        # local disk write (1 s) + network to remote (1 s) + remote disk (1 s)
        assert sim.now == pytest.approx(3.0, rel=0.01)


class TestRead:
    def write_file(self, sim, dfs, machines, path="/f", size=200):
        write = dfs.write(path, size, machines[0])
        sim.run(until=write)

    def test_local_read_has_no_network_cost(self, sim, setup):
        cluster, machines, dfs = setup
        self.write_file(sim, dfs, machines)
        start = sim.now
        net_before = sum(
            cluster.scheduler.port_bytes.get(m.nic_in, 0.0) for m in machines
        )
        read = dfs.read("/f", machines[0])
        sim.run(until=read)
        net_after = sum(
            cluster.scheduler.port_bytes.get(m.nic_in, 0.0) for m in machines
        )
        assert net_after == net_before  # all blocks local to writer
        assert sim.now > start  # but disk reads took time

    def test_remote_read_crosses_network(self, sim, setup):
        cluster, machines, dfs = setup
        self.write_file(sim, dfs, machines)
        # Pick a machine that holds no replica of the file.
        meta = dfs.namenode.lookup("/f")
        holders = {m.name for b in meta.blocks for m in b.replicas}
        outsider = next(m for m in machines if m.name not in holders)
        read = dfs.read("/f", outsider)
        sim.run(until=read)
        ingress = cluster.scheduler.port_bytes.get(outsider.nic_in, 0.0)
        assert ingress == pytest.approx(200.0)

    def test_read_returns_size(self, sim, setup):
        _cluster, machines, dfs = setup
        self.write_file(sim, dfs, machines, size=250)
        read = dfs.read("/f", machines[0])
        value = sim.run(until=read)
        assert value == 250

    def test_read_missing_file_raises(self, sim, setup):
        _cluster, machines, dfs = setup
        with pytest.raises(StorageError):
            dfs.namenode.lookup("/missing")

    def test_read_falls_back_to_surviving_replica(self, sim, setup):
        cluster, machines, dfs = setup
        self.write_file(sim, dfs, machines)
        cluster.kill(machines[0])  # writer held the first replica of each block
        reader = next(m for m in machines if m.alive)
        read = dfs.read("/f", reader)
        value = sim.run(until=read)
        assert value == 200

    def test_read_fails_if_all_replicas_lost(self, sim, setup):
        cluster, machines, dfs = setup
        self.write_file(sim, dfs, machines, size=100)
        block = dfs.namenode.lookup("/f").blocks[0]
        for machine in block.replicas:
            cluster.kill(machine)
        reader = next(m for m in machines if m.alive)
        read = dfs.read("/f", reader)
        read.defused = True
        sim.run()
        assert not read.ok


class TestMetadata:
    def test_delete_frees_replica_space(self, sim, setup):
        _cluster, machines, dfs = setup
        write = dfs.write("/f", 200, machines[0])
        sim.run(until=write)
        freed = dfs.delete("/f")
        assert freed == 200
        assert sum(m.disk_used for m in machines) == 0
        assert not dfs.exists("/f")

    def test_delete_missing_is_noop(self, setup):
        _cluster, _machines, dfs = setup
        assert dfs.delete("/missing") == 0

    def test_local_bytes(self, sim, setup):
        _cluster, machines, dfs = setup
        write = dfs.write("/f", 300, machines[2])
        sim.run(until=write)
        assert dfs.local_bytes("/f", machines[2]) == 300

    def test_zero_byte_file(self, sim, setup):
        _cluster, machines, dfs = setup
        write = dfs.write("/empty", 0, machines[0])
        sim.run(until=write)
        assert dfs.file_size("/empty") == 0
