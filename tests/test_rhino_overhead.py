"""§5.3: Rhino's proactive replication must not slow query processing."""

import pytest

from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic
from repro.core.api import Rhino, RhinoConfig

from tests.engine_fixtures import EngineEnv, live_feeder

KEYS = [f"k{i}" for i in range(16)]


def run_job(attach_rhino):
    env = EngineEnv(machines=4)
    env.topic("events", 2)
    graph = StreamGraph("overhead")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count",
        StatefulCounterLogic,
        4,
        inputs=[("src", "hash")],
        stateful=True,
        measure_latency=True,
    )
    graph.sink("out", inputs=[("count", "forward")])
    config = JobConfig(
        num_key_groups=32,
        checkpoint_interval=1.0,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    job = env.job(graph, config=config).start()
    rhino = None
    if attach_rhino:
        rhino = Rhino(job, env.cluster, RhinoConfig()).attach()
    live_feeder(env, "events", KEYS, count=400, interval=0.02, nbytes=200)
    env.run(until=12.0)
    return env, job, rhino


class TestSteadyStateOverhead:
    def test_latency_unchanged_with_replication(self):
        _env, baseline_job, _none = run_job(attach_rhino=False)
        _env, rhino_job, rhino = run_job(attach_rhino=True)
        baseline = baseline_job.metrics.latency.mean()
        with_rhino = rhino_job.metrics.latency.mean()
        # "Rhino does not increase processing latency of a query when there
        # is no in-flight reconfiguration" (§5.3).
        assert with_rhino == pytest.approx(baseline, rel=0.1)

    def test_results_identical_with_and_without_rhino(self):
        _env, baseline_job, _none = run_job(attach_rhino=False)
        _env, rhino_job, _rhino = run_job(attach_rhino=True)

        def finals(job):
            out = {}
            for key, _t, value, _w in job.sink_results("out"):
                out[key] = max(out.get(key, 0), value)
            return out

        assert finals(baseline_job) == finals(rhino_job)

    def test_replication_happened_in_rhino_run(self):
        _env, _job, rhino = run_job(attach_rhino=True)
        assert rhino.replicator.stats.checkpoints_replicated > 0
        assert rhino.replicator.stats.bytes_replicated > 0
