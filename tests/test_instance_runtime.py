"""Unit tests for instance-level machinery: alignment, watermarks, filters."""

import pytest

from repro.engine.graph import StreamGraph
from repro.engine.instance import ReplayFilter
from repro.engine.operators import PassThroughLogic, StatefulCounterLogic
from repro.engine.partitioning import key_group_of
from repro.engine.records import CheckpointBarrier, EndOfStream, Record, Watermark

from tests.engine_fixtures import EngineEnv


NUM_GROUPS = 16


class TestReplayFilter:
    def test_default_cutoff_skips_old_records(self):
        rf = ReplayFilter(NUM_GROUPS, default_cutoff=10.0)
        assert not rf.should_process(Record("k", 9.0))
        assert not rf.should_process(Record("k", 10.0))
        assert rf.should_process(Record("k", 11.0))

    def test_fresh_ranges_use_fresh_cutoff(self):
        key = "k"
        group = key_group_of(key, NUM_GROUPS)
        rf = ReplayFilter(
            NUM_GROUPS,
            default_cutoff=float("inf"),
            fresh_ranges=[(group, group + 1)],
            fresh_cutoff=5.0,
        )
        assert rf.should_process(Record(key, 6.0))
        assert not rf.should_process(Record(key, 5.0))

    def test_keys_outside_fresh_ranges_use_default(self):
        key = "k"
        group = key_group_of(key, NUM_GROUPS)
        other = (group + 1) % NUM_GROUPS
        rf = ReplayFilter(
            NUM_GROUPS,
            default_cutoff=100.0,
            fresh_ranges=[(other, other + 1)],
            fresh_cutoff=0.0,
        )
        assert not rf.should_process(Record(key, 50.0))
        assert rf.should_process(Record(key, 150.0))

    def test_infinite_default_blocks_everything(self):
        rf = ReplayFilter(NUM_GROUPS, default_cutoff=float("inf"))
        assert not rf.should_process(Record("k", 1e12))


def two_source_job(env, logic_factory=PassThroughLogic, stateful=False):
    graph = StreamGraph("alignment")
    graph.source("a", topic="a", parallelism=1)
    graph.source("b", topic="b", parallelism=1)
    graph.operator(
        "op",
        logic_factory,
        1,
        inputs=[("a", "hash"), ("b", "hash")],
        stateful=stateful,
    )
    graph.sink("out", inputs=[("op", "forward")])
    return env.job(graph)


class TestAlignment:
    def test_barrier_blocks_faster_channel_until_aligned(self):
        """Records behind an un-aligned barrier wait (epoch alignment)."""
        env = EngineEnv()
        env.topic("a", 1)
        env.topic("b", 1)
        job = two_source_job(env, StatefulCounterLogic, stateful=True).start()
        env.run(until=1.0)
        instance = job.operator_instances("op")[0]
        # Inject a barrier directly into channel a only.
        channel_a = next(c for c in instance.inputs if "a[0]" in c.name)
        channel_b = next(c for c in instance.inputs if "b[0]" in c.name)
        barrier = CheckpointBarrier(99, env.sim.now)
        channel_a.store.put(barrier)
        channel_a.store.put(Record("after-barrier", env.sim.now, nbytes=8))
        env.run(until=2.0)
        # The post-barrier record must not have been processed yet.
        assert instance.records_processed == 0
        # Completing alignment on channel b releases it.
        channel_b.store.put(barrier)
        env.run(until=3.0)
        assert instance.records_processed == 1

    def test_pre_barrier_records_processed_before_alignment(self):
        env = EngineEnv()
        env.topic("a", 1)
        env.topic("b", 1)
        job = two_source_job(env, StatefulCounterLogic, stateful=True).start()
        env.run(until=1.0)
        instance = job.operator_instances("op")[0]
        channel_a = next(c for c in instance.inputs if "a[0]" in c.name)
        channel_a.store.put(Record("before", env.sim.now, nbytes=8))
        channel_a.store.put(CheckpointBarrier(7, env.sim.now))
        env.run(until=2.0)
        assert instance.records_processed == 1

    def test_end_of_stream_terminates_instance(self):
        env = EngineEnv()
        env.topic("a", 1)
        env.topic("b", 1)
        job = two_source_job(env).start()
        env.run(until=1.0)
        instance = job.operator_instances("op")[0]
        eos = EndOfStream(env.sim.now)
        for channel in list(instance.inputs):
            channel.store.put(eos)
        env.run(until=2.0)
        assert not instance.running

    def test_detach_completes_pending_alignment(self):
        env = EngineEnv()
        env.topic("a", 1)
        env.topic("b", 1)
        job = two_source_job(env, StatefulCounterLogic, stateful=True).start()
        env.run(until=1.0)
        instance = job.operator_instances("op")[0]
        channel_a = next(c for c in instance.inputs if "a[0]" in c.name)
        channel_b = next(c for c in instance.inputs if "b[0]" in c.name)
        channel_a.store.put(CheckpointBarrier(3, env.sim.now))
        env.run(until=1.5)
        assert instance._alignments  # waiting on channel b
        instance.detach_input(channel_b)
        env.run(until=2.5)
        assert not instance._alignments


class TestWatermarkAggregation:
    def test_operator_watermark_is_min_over_channels(self):
        env = EngineEnv()
        env.topic("a", 1)
        env.topic("b", 1)
        job = two_source_job(env).start()
        env.run(until=1.0)
        instance = job.operator_instances("op")[0]
        channel_a = next(c for c in instance.inputs if "a[0]" in c.name)
        channel_b = next(c for c in instance.inputs if "b[0]" in c.name)
        channel_a.store.put(Watermark(50.0))
        env.run(until=2.0)
        assert instance.watermark == float("-inf")  # b has not reported
        channel_b.store.put(Watermark(30.0))
        env.run(until=3.0)
        assert instance.watermark == 30.0
        channel_b.store.put(Watermark(60.0))
        env.run(until=4.0)
        assert instance.watermark == 50.0

    def test_watermarks_never_regress(self):
        env = EngineEnv()
        env.topic("a", 1)
        env.topic("b", 1)
        job = two_source_job(env).start()
        env.run(until=1.0)
        instance = job.operator_instances("op")[0]
        for channel in list(instance.inputs):
            channel.store.put(Watermark(40.0))
        env.run(until=2.0)
        for channel in list(instance.inputs):
            channel.store.put(Watermark(20.0))  # late/regressing watermark
        env.run(until=3.0)
        assert instance.watermark == 40.0


class TestSourcePause:
    def test_paused_source_emits_nothing(self):
        env = EngineEnv()
        env.topic("events", 1)
        env.feed_sequence("events", keys=["k"], count=10, interval=0.0)
        graph = StreamGraph("pause")
        graph.source("src", topic="events", parallelism=1)
        graph.sink("out", inputs=[("src", "forward")])
        job = env.job(graph)
        job.deploy()
        source = job.source_instances()[0]
        source.paused = True
        job.start()
        env.run(until=2.0)
        assert source.records_emitted == 0
        source.paused = False
        env.run(until=4.0)
        assert source.records_emitted == 10

    def test_source_replay_filter_drops_at_ingest(self):
        env = EngineEnv()
        env.topic("events", 1)
        env.feed_sequence("events", keys=["k"], count=10, interval=0.0)
        graph = StreamGraph("drop")
        graph.source("src", topic="events", parallelism=1)
        graph.sink("out", inputs=[("src", "forward")])
        job = env.job(graph)
        job.deploy()
        source = job.source_instances()[0]
        source.replay_filter = ReplayFilter(16, default_cutoff=float("inf"))
        job.start()
        env.run(until=2.0)
        assert source.records_dropped == 10
        assert source.records_emitted == 0
