"""Tests for the additional NEXMark queries (Q1-Q4, Q7)."""

import pytest

from repro.engine.records import Record
from repro.nexmark.extra_queries import (
    DOLLAR_TO_EUR,
    nbq1,
    nbq2,
    nbq3,
    nbq4,
    nbq7,
)

from tests.engine_fixtures import EngineEnv


def run_graph(env, graph, until=10.0):
    job = env.job(graph).start()
    env.run(until=until)
    return job


class TestQ1CurrencyConversion:
    def test_prices_converted(self):
        env = EngineEnv()
        env.topic("bids", 1)
        for i in range(5):
            env.log.append("bids", 0, Record(f"a{i}", 0.1 * i, value=100.0))
        job = run_graph(env, nbq1(source_dop=1, dop=1))
        values = [v for _k, _t, v, _w in job.sink_results("out")]
        assert values == [pytest.approx(100.0 * DOLLAR_TO_EUR)] * 5

    def test_none_values_pass_through(self):
        env = EngineEnv()
        env.topic("bids", 1)
        env.log.append("bids", 0, Record("a", 0.0, value=None))
        job = run_graph(env, nbq1(source_dop=1, dop=1))
        assert job.sink_results("out")[0][2] is None


class TestQ2Selection:
    def test_only_wanted_auctions_pass(self):
        env = EngineEnv()
        env.topic("bids", 1)
        for i in range(10):
            env.log.append("bids", 0, Record(f"a{i}", 0.1 * i, value=i))
        job = run_graph(env, nbq2(auction_ids={2, 5, 7}, source_dop=1, dop=1))
        values = sorted(v for _k, _t, v, _w in job.sink_results("out"))
        assert values == [2, 5, 7]


class TestQ3IncrementalJoin:
    def test_person_auction_matches(self):
        env = EngineEnv()
        env.topic("persons", 1)
        env.topic("auctions", 1)
        env.log.append("persons", 0, Record("seller-1", 0.1, value="P"))
        env.log.append("auctions", 0, Record("seller-1", 0.2, value="A1"))
        env.log.append("auctions", 0, Record("seller-1", 0.3, value="A2"))
        job = run_graph(env, nbq3(source_dop=1, dop=2))
        results = job.sink_results("out")
        # Each auction joins the already-seen person: two outputs.
        assert len(results) == 2

    def test_join_state_grows_without_bound(self):
        env = EngineEnv()
        env.topic("persons", 1)
        env.topic("auctions", 1)
        for i in range(20):
            env.log.append(
                "persons", 0, Record(f"s{i}", 0.1 * i, value="P", nbytes=200)
            )
        job = run_graph(env, nbq3(source_dop=1, dop=2))
        assert job.total_state_bytes("join") >= 20 * 200


class TestQ4WindowedAverage:
    def test_window_emits_counts(self):
        env = EngineEnv()
        env.topic("auctions", 1)
        for i in range(10):
            env.log.append("auctions", 0, Record("cat-1", 0.5 * i, value=i))
        env.log.append("auctions", 0, Record("other", 120.0, value=0))
        job = run_graph(env, nbq4(source_dop=1, dop=1, window=10.0), until=30.0)
        results = [r for r in job.sink_results("out") if r[0] == "cat-1"]
        assert results
        assert results[0][2] == 10  # all ten records in the first window


class TestQ7HighestBid:
    def test_maximum_per_window(self):
        env = EngineEnv()
        env.topic("bids", 1)
        prices = [5, 17, 3, 11]
        for i, price in enumerate(prices):
            env.log.append("bids", 0, Record("auction-1", 1.0 + i, value=price))
        env.log.append("bids", 0, Record("other", 30.0, value=1))
        job = run_graph(env, nbq7(source_dop=1, dop=1, window=10.0), until=40.0)
        results = [r for r in job.sink_results("out") if r[0] == "auction-1"]
        assert len(results) == 1
        assert results[0][2] == 17

    def test_state_deleted_after_window(self):
        env = EngineEnv()
        env.topic("bids", 1)
        env.log.append("bids", 0, Record("auction-1", 1.0, value=9))
        env.log.append("bids", 0, Record("other", 30.0, value=1))
        job = run_graph(env, nbq7(source_dop=1, dop=1, window=10.0), until=40.0)
        instance = job.stateful_instances("max")[0]
        group = instance.logic.ctx.key_group("auction-1")
        assert instance.state.get(group, ("auction-1", "max", 0.0)) is None
