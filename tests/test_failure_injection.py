"""Failure-injection tests: deaths at awkward protocol moments."""

import pytest

from repro.common.errors import ProtocolError
from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic
from repro.core.api import Rhino, RhinoConfig

from tests.engine_fixtures import EngineEnv, live_feeder

KEYS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"]


def counter_graph():
    graph = StreamGraph("counter")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count",
        StatefulCounterLogic,
        4,
        inputs=[("src", "hash")],
        stateful=True,
    )
    graph.sink("out", inputs=[("count", "forward")])
    return graph


def setup(machines=5, checkpoint_interval=1.0, replication_factor=1):
    env = EngineEnv(machines=machines)
    env.topic("events", 2)
    config = JobConfig(
        num_key_groups=32,
        checkpoint_interval=checkpoint_interval,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    job = env.job(counter_graph(), config=config).start()
    rhino = Rhino(
        job,
        env.cluster,
        RhinoConfig(
            replication_factor=replication_factor,
            scheduling_delay=0.1,
            local_fetch_seconds=0.01,
            state_load_seconds=0.05,
            handover_timeout=60.0,
        ),
    ).attach()
    return env, job, rhino


def final_counts(job):
    finals = {}
    for key, _t, value, _w in job.sink_results("out"):
        finals[key] = max(finals.get(key, 0), value)
    return finals


class TestFailureDuringCheckpoint:
    def test_kill_mid_checkpoint_aborts_it(self):
        env, job, rhino = setup(checkpoint_interval=None)
        live_feeder(env, "events", KEYS, count=100, interval=0.02)
        env.run(until=2.0)
        checkpoint_id = job.coordinator.trigger_checkpoint()
        # Kill immediately, before barriers can align everywhere.
        victim = job.instance("count", 2).machine
        env.cluster.kill(victim)
        env.run(until=6.0)
        assert all(
            r.checkpoint_id != checkpoint_id for r in job.coordinator.completed
        )

    def test_checkpointing_resumes_after_recovery(self):
        env, job, rhino = setup()
        live_feeder(env, "events", KEYS, count=400, interval=0.02)
        env.run(until=3.0)
        victim = job.instance("count", 2).machine
        env.cluster.kill(victim)
        recovery = rhino.recover_from_failure(victim)
        env.run(until=recovery)
        completed_before = len(job.coordinator.completed)
        env.run(until=env.sim.now + 5.0)
        assert len(job.coordinator.completed) > completed_before


class TestReplicaChainFailure:
    def test_chain_member_death_triggers_repair(self):
        env, job, rhino = setup(machines=6)
        live_feeder(env, "events", KEYS, count=200, interval=0.02)
        env.run(until=3.0)
        # Kill a machine that holds replicas but no instance we care about:
        # pick one from a replica chain that is not a primary of count[0].
        group = rhino.replication_manager.group_of("count[0]")
        victim = group.chain[0]
        env.cluster.kill(victim)
        recovery = rhino.recover_from_failure(victim)
        recovery.defused = True
        env.run(until=15.0)
        # Chains no longer reference the dead machine.
        for chain_group in rhino.replication_manager.groups.values():
            assert victim not in chain_group.chain

    def test_repaired_replica_holds_full_state(self):
        env, job, rhino = setup(machines=6)
        live_feeder(env, "events", KEYS, count=300, interval=0.02)
        env.run(until=3.0)
        group = rhino.replication_manager.group_of("count[1]")
        victim = group.chain[0]
        env.cluster.kill(victim)
        recovery = rhino.recover_from_failure(victim)
        recovery.defused = True
        env.run(until=15.0)
        new_group = rhino.replication_manager.group_of("count[1]")
        replacement = new_group.chain[0]
        store = rhino.replicator.store_on(replacement)
        assert store.has_complete("count[1]")


class TestDoubleFailure:
    def test_sequential_failures_both_recover(self):
        env, job, rhino = setup(machines=6)
        live_feeder(env, "events", KEYS, count=600, interval=0.02)
        env.run(until=3.0)
        first = job.instance("count", 2).machine
        env.cluster.kill(first)
        env.run(until=rhino.recover_from_failure(first))
        env.run(until=env.sim.now + 3.0)  # a checkpoint + replication
        second = job.instance("count", 1).machine
        assert second is not first
        env.cluster.kill(second)
        env.run(until=rhino.recover_from_failure(second))
        env.run(until=25.0)
        expected = {}
        for i in range(600):
            key = KEYS[i % len(KEYS)]
            expected[key] = expected.get(key, 0) + 1
        assert final_counts(job) == expected


class TestUnrecoverableSituations:
    def test_recover_unknown_machine_rejected(self):
        env, job, rhino = setup()
        spare = env.cluster.add_machine("outsider", nic_bandwidth=1e9)
        recovery = rhino.recover_from_failure(spare)
        recovery.defused = True
        env.run(until=2.0)
        assert not recovery.ok

    def test_megaphone_style_no_replica_path_raises(self):
        """Without any completed checkpoint, recovery cannot proceed."""
        env, job, rhino = setup(checkpoint_interval=None)
        live_feeder(env, "events", KEYS, count=50, interval=0.02)
        env.run(until=2.0)
        victim = job.instance("count", 0).machine
        env.cluster.kill(victim)
        recovery = rhino.recover_from_failure(victim)
        recovery.defused = True
        env.run(until=10.0)
        assert not recovery.ok


class TestReconfigurationAfterRecovery:
    def test_rebalance_onto_replacement_preserves_counts(self):
        """Regression: a replacement's replay filter must not swallow
        records of key groups it adopts in a later rebalance."""
        env, job, rhino = setup(machines=5)
        live_feeder(env, "events", KEYS, count=500, interval=0.02)
        env.run(until=3.0)
        victim = job.instance("count", 3).machine
        env.cluster.kill(victim)
        env.run(until=rhino.recover_from_failure(victim))
        env.run(until=env.sim.now + 2.0)
        # Move half of count[1]'s virtual nodes onto the replacement.
        rebalance = rhino.rebalance("count", [(1, 3)])
        env.sim.run(until=rebalance)
        env.run(until=25.0)
        expected = {}
        for i in range(500):
            key = KEYS[i % len(KEYS)]
            expected[key] = expected.get(key, 0) + 1
        assert final_counts(job) == expected

    def test_rescale_after_recovery_preserves_counts(self):
        env, job, rhino = setup(machines=6)
        live_feeder(env, "events", KEYS, count=500, interval=0.02)
        env.run(until=3.0)
        victim = job.instance("count", 2).machine
        env.cluster.kill(victim)
        env.run(until=rhino.recover_from_failure(victim))
        env.run(until=env.sim.now + 2.0)
        env.sim.run(until=rhino.rescale("count", add_instances=2))
        env.run(until=25.0)
        expected = {}
        for i in range(500):
            key = KEYS[i % len(KEYS)]
            expected[key] = expected.get(key, 0) + 1
        assert final_counts(job) == expected
