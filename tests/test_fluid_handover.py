"""Fluid (pipelined) handover: chunk planning, pacing, resumable
transfers, chunked-extraction properties, protocol equivalence, and
failure regressions.

The fluid protocol (chunked pre-copy + delta catch-up + chunked cutover)
is off by default; these tests pin both halves of that contract: the
default path stays identical to the all-at-once transfer, and the
pipelined path reaches the same final state while shipping almost
everything before the barrier.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.common.errors import SimulationError
from repro.core.api import Rhino, RhinoConfig
from repro.core.fluid import StateChunk, TokenBucket, plan_chunks
from repro.core.handover import HandoverReport
from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic
from repro.experiments.preload import preload_state
from repro.experiments.scenarios.chaos import run_chaos, run_chaos_sweep
from repro.obs.tracer import Tracer
from repro.sim import Simulator
from repro.storage.kvs import LSMStore

from tests.engine_fixtures import EngineEnv, live_feeder
from tests.test_chaos import canonical_trace

KEYS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"]


# -- chunk planning ----------------------------------------------------------


class TestPlanChunks:
    def test_contiguous_groups_pack_up_to_the_cap(self):
        chunks = plan_chunks({0: 40, 1: 40, 2: 40}, [(0, 3)], 100)
        assert [(c.lo, c.hi, c.nbytes) for c in chunks] == [(0, 2, 80), (2, 3, 40)]

    def test_oversized_group_splits_into_near_equal_parts(self):
        chunks = plan_chunks({3: 250}, [(3, 4)], 100)
        assert all(c.lo == 3 and c.hi == 4 for c in chunks)
        assert [c.part for c in chunks] == [0, 1, 2]
        assert all(c.parts == 3 for c in chunks)
        assert sum(c.nbytes for c in chunks) == 250
        assert max(c.nbytes for c in chunks) - min(c.nbytes for c in chunks) <= 1

    def test_oversized_group_closes_the_open_chunk_first(self):
        chunks = plan_chunks({0: 30, 1: 500, 2: 30}, [(0, 3)], 100)
        assert (chunks[0].lo, chunks[0].hi, chunks[0].nbytes) == (0, 1, 30)
        assert all(c.lo == 1 for c in chunks[1:-1])
        assert (chunks[-1].lo, chunks[-1].hi, chunks[-1].nbytes) == (2, 3, 30)

    def test_empty_range_still_yields_a_covering_chunk(self):
        chunks = plan_chunks({}, [(0, 4), (8, 12)], 64)
        assert [(c.lo, c.hi, c.nbytes) for c in chunks] == [(0, 4, 0), (8, 12, 0)]

    def test_every_range_is_fully_covered(self):
        sizes = {0: 10, 2: 200, 5: 64, 6: 1}
        chunks = plan_chunks(sizes, [(0, 8)], 64)
        covered = set()
        for chunk in chunks:
            covered.update(range(chunk.lo, chunk.hi))
        assert covered == set(range(8))
        assert sum(c.nbytes for c in chunks) == sum(sizes.values())

    def test_zero_cap_rejected(self):
        with pytest.raises(SimulationError):
            plan_chunks({0: 1}, [(0, 1)], 0)

    def test_repr_shows_subchunk_index(self):
        assert "2/3" in repr(StateChunk(0, 1, 10, part=1, parts=3))


# -- token bucket ------------------------------------------------------------


class TestTokenBucket:
    def test_acquires_average_exactly_the_rate(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=100.0)
        times = []

        def consumer():
            for _ in range(4):
                yield from bucket.acquire(100)
                times.append(sim.now)

        proc = sim.process(consumer())
        sim.run(until=proc)
        assert times == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_burst_caps_idle_accumulation(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=100.0, burst=50.0)

        def consumer():
            yield sim.timeout(10.0)  # idle refill must cap at the burst
            yield from bucket.acquire(200)

        proc = sim.process(consumer())
        sim.run(until=proc)
        assert sim.now == pytest.approx(11.5)  # 50 banked, 150 deficit

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(SimulationError):
            TokenBucket(Simulator(), rate=0)


# -- resumable chunked transfers ---------------------------------------------


def two_machines(nic=1e6):
    sim = Simulator()
    cluster = Cluster(sim)
    a, b = cluster.add_machines(2, prefix="m", nic_bandwidth=nic)
    return sim, cluster, a, b


class TestChunkedTransfer:
    def test_delivers_all_chunks_and_reports_progress(self):
        sim, cluster, a, b = two_machines()
        xfer = cluster.chunked_transfer(a, b, [250_000] * 4, tag="t")
        assert xfer.remaining_bytes == 1_000_000 and not xfer.done
        proc = xfer.process()
        sim.run(until=proc)
        assert proc.ok and proc.value == 1_000_000
        assert xfer.done and xfer.moved == 1_000_000

    def test_retry_resends_only_unfinished_chunks(self):
        sim, cluster, a, b = two_machines()
        xfer = cluster.chunked_transfer(a, b, [1_000_000] * 4, tag="t")
        proc = xfer.process()
        proc.defused = True

        def chaos():
            # Each chunk takes ~1 simulated second at 1 MB/s; the cut
            # lands mid-chunk-2.
            yield sim.timeout(1.5)
            cluster.partition([[a.name], [b.name]])

        sim.process(chaos())
        sim.run(until=5.0)
        assert proc.triggered and not proc.ok
        # Chunk 1 was committed; the failed chunk 2 stays pending.
        assert xfer.moved == 1_000_000
        assert xfer.remaining_bytes == 3_000_000

        cluster.heal()
        retry = xfer.process()
        sim.run(until=retry)
        assert retry.ok and xfer.done
        assert xfer.moved == 4_000_000


# -- chunked extraction / ingest properties ----------------------------------

GROUPS = 16

one_op = st.tuples(
    st.integers(0, GROUPS - 1),  # key group
    st.integers(0, 4),  # key index within the group
    st.integers(1, 64),  # modeled bytes
    st.booleans(),  # flush after this put
)

op_lists = st.lists(one_op, min_size=1, max_size=40)

cut_lists = st.lists(st.integers(1, GROUPS - 1), max_size=4)


def apply_ops(store, ops, value_offset=0):
    for index, (group, key_index, nbytes, flush) in enumerate(ops):
        store.put(
            group,
            f"k{key_index}",
            (group, key_index, value_offset + index),
            nbytes=nbytes,
        )
        if flush:
            store.flush()


def chunk_ranges(cuts, extra=None):
    """Consecutive ranges over [0, GROUPS) plus an optional overlap."""
    bounds = sorted(set([0, GROUPS] + list(cuts)))
    ranges = list(zip(bounds, bounds[1:]))
    if extra is not None:
        lo, span = extra
        ranges.append((lo, min(GROUPS, lo + span)))
    return ranges


class TestChunkedExtractionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=op_lists,
        cuts=cut_lists,
        extra=st.tuples(st.integers(0, GROUPS - 1), st.integers(1, GROUPS)),
    )
    def test_chunked_extract_union_equals_whole_range(self, ops, cuts, extra):
        """Overlapping chunk boundaries + a mid-stream compaction must
        not change what extraction sees."""
        store = LSMStore("prop")
        apply_ops(store, ops)
        whole = {(g, k): v for g, k, v in store.extract_groups(0, GROUPS)}
        ranges = chunk_ranges(cuts, extra)
        union = {}
        for index, (lo, hi) in enumerate(ranges):
            if index == len(ranges) // 2:
                store.flush()
                store.compact()
            for group, key, value in store.extract_groups(lo, hi):
                assert union.get((group, key), value) == value
                union[(group, key)] = value
        assert union == whole

    @settings(max_examples=30, deadline=None)
    @given(pre=op_lists, post=st.lists(one_op, max_size=20))
    def test_since_seq_extracts_exactly_the_keys_written_past_cutoff(
        self, pre, post
    ):
        store = LSMStore("prop")
        apply_ops(store, pre)
        cutoff = store.current_seq
        store.flush()  # the snapshot the pre-copy ships
        apply_ops(store, post, value_offset=1000)
        delta = store.extract_groups(0, GROUPS, since_seq=cutoff)
        touched = {(group, f"k{key}") for group, key, _n, _f in post}
        assert {(g, k) for g, k, _v in delta} == touched
        # Delta values are fully resolved, not partial merges.
        for group, key, value in delta:
            assert value == store.get(group, key)

    @settings(max_examples=30, deadline=None)
    @given(pre=op_lists, post=st.lists(one_op, max_size=20))
    def test_dirty_bytes_bound_the_post_cutoff_writes(self, pre, post):
        store = LSMStore("prop")
        apply_ops(store, pre)
        cutoff = store.current_seq
        store.flush()
        apply_ops(store, post, value_offset=1000)
        dirty = store.dirty_bytes_in_groups(0, GROUPS, cutoff)
        assert (dirty > 0) == bool(post)
        # Upper bound: never more than everything written past the cutoff.
        assert dirty <= sum(nbytes for _g, _k, nbytes, _f in post)
        # Per-group chunks partition the estimate exactly.
        assert dirty == sum(
            store.dirty_bytes_in_groups(g, g + 1, cutoff) for g in range(GROUPS)
        )
        if not post:
            assert store.extract_groups(0, GROUPS, since_seq=cutoff) == []

    @settings(max_examples=30, deadline=None)
    @given(ops=op_lists, cuts=cut_lists)
    def test_chunked_ingest_roundtrips_through_overlapping_ranges(
        self, ops, cuts
    ):
        """Shipping a snapshot chunk-by-chunk (ranged ingests, overlapping
        boundaries, origin compacting mid-stream) reproduces the whole."""
        src = LSMStore("src")
        apply_ops(src, ops)
        src.flush()
        tables = list(src.tables)
        expected = {(g, k): v for g, k, v in src.extract_groups(0, GROUPS)}
        dst = LSMStore("dst")
        ranges = chunk_ranges(cuts, extra=(0, GROUPS))  # full-range overlap
        for index, (lo, hi) in enumerate(ranges):
            if index == 1:
                src.compact()  # must not corrupt the shipped snapshot
            dst.ingest_tables(tables, ranges=[(lo, hi)])
        assert {(g, k): v for g, k, v in dst.extract_groups(0, GROUPS)} == expected


# -- protocol equivalence ----------------------------------------------------


def fluid_scenario(
    pipelined, state_bytes=256 * 1024 * 1024, tracer=None, **rhino_kwargs
):
    """A rebalance under steady load; returns (final counts, report)."""
    env = EngineEnv(machines=4, tracer=tracer)
    env.topic("events", 2)
    graph = StreamGraph("fluid")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count", StatefulCounterLogic, 2, inputs=[("src", "hash")], stateful=True
    )
    graph.sink("out", inputs=[("count", "forward")])
    config = JobConfig(
        num_key_groups=32,
        checkpoint_interval=None,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    job = env.job(graph, config=config).start()
    rhino = Rhino(
        job,
        env.cluster,
        RhinoConfig(
            scheduling_delay=0.1,
            local_fetch_seconds=0.01,
            state_load_seconds=0.05,
            pipelined_handover=pipelined,
            handover_chunk_bytes=16 * 1024 * 1024,
            **rhino_kwargs,
        ),
    ).attach()
    live_feeder(env, "events", KEYS, count=200, interval=0.02)
    env.run(until=1.0)
    preload_state(job, "count", state_bytes)
    env.run(until=2.0)
    handover = rhino.rebalance("count", [(0, 1)])
    report = env.sim.run(until=handover)
    env.run(until=12.0)
    finals = {}
    for key, _t, value, _w in job.sink_results("out"):
        finals[key] = max(finals.get(key, 0), value)
    return finals, report


class TestProtocolEquivalence:
    def test_pipelined_reaches_the_same_final_state_as_bulk(self):
        bulk_counts, bulk_report = fluid_scenario(False)
        fluid_counts, fluid_report = fluid_scenario(True)
        expected = {key: 200 // len(KEYS) for key in KEYS}
        assert bulk_counts == expected
        assert fluid_counts == expected
        # The bulk leg ships everything at the barrier; the fluid leg
        # pre-copies it and cuts over with a tiny delta.
        assert bulk_report.precopy_bytes == 0
        assert bulk_report.cutover_bytes == bulk_report.migrated_bytes > 0
        assert fluid_report.precopy_bytes > 0
        assert fluid_report.precopy_chunks > 1
        assert fluid_report.cutover_bytes < bulk_report.cutover_bytes // 100

    def test_delta_rounds_run_under_write_pressure(self):
        _counts, report = fluid_scenario(
            True,
            handover_delta_threshold_bytes=0,
            handover_delta_rounds=3,
        )
        assert report.delta_rounds >= 1
        assert report.delta_bytes > 0
        assert report.delta_seconds > 0

    def test_phase_breakdown_is_complete_and_consistent(self):
        _counts, report = fluid_scenario(True)
        phases = report.phase_breakdown()
        assert set(phases) == {
            "precopy_bytes",
            "precopy_chunks",
            "precopy_seconds",
            "delta_bytes",
            "delta_rounds",
            "delta_seconds",
            "cutover_bytes",
            "cutover_seconds",
        }
        assert (
            phases["precopy_bytes"] + phases["delta_bytes"] + phases["cutover_bytes"]
            == report.migrated_bytes
        )

    def test_report_defaults_keep_bulk_runs_all_cutover(self):
        report = HandoverReport(1, "rebalance")
        phases = report.phase_breakdown()
        assert all(value == 0 for value in phases.values())


class TestDefaultOffIdentity:
    """Pipelining off (the default) must not perturb the event schedule."""

    def test_default_trace_has_no_fluid_spans_and_replays_identically(self):
        runs = []
        for _ in range(2):
            tracer = Tracer()
            result = run_chaos(seed=5, fault_count=2, rebalance_at=2.0,
                               tracer=tracer)
            assert result.ok
            runs.append(canonical_trace(tracer))
            names = {s.name for s in tracer.spans}
            assert "handover.precopy" not in names
            assert "handover.delta" not in names
        assert runs[0] == runs[1]

    def test_explicit_false_matches_the_default(self):
        default_tracer, explicit_tracer = Tracer(), Tracer()
        run_chaos(seed=5, fault_count=2, rebalance_at=2.0, tracer=default_tracer)
        run_chaos(
            seed=5,
            fault_count=2,
            rebalance_at=2.0,
            tracer=explicit_tracer,
            pipelined_handover=False,
        )
        assert canonical_trace(default_tracer) == canonical_trace(explicit_tracer)

    def test_pipelined_trace_contains_the_fluid_phases(self):
        tracer = Tracer()
        counts, _report = fluid_scenario(True, tracer=tracer)
        assert counts  # the run converged
        names = {s.name for s in tracer.spans}
        assert "handover.precopy" in names
        assert "handover.chunk" in names
        assert "handover.cutover" in names

    def test_warm_replicated_target_skips_the_precopy(self):
        """With proactive replication already holding the target's copy,
        the fluid protocol correctly ships nothing in the background."""
        tracer = Tracer()
        result = run_chaos(
            seed=5,
            fault_count=0,
            rebalance_at=2.0,
            tracer=tracer,
            pipelined_handover=True,
            handover_chunk_bytes=1024,
        )
        assert result.ok
        assert "handover.precopy" not in {s.name for s in tracer.spans}


# -- failure during the fluid phases -----------------------------------------


def abort_setup(**rhino_kwargs):
    env = EngineEnv(machines=5)
    env.topic("events", 2)
    graph = StreamGraph("fluid-abort")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count", StatefulCounterLogic, 4, inputs=[("src", "hash")], stateful=True
    )
    graph.sink("out", inputs=[("count", "forward")])
    config = JobConfig(
        num_key_groups=32,
        virtual_node_count=4,
        checkpoint_interval=1.0,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    job = env.job(graph, config=config).start()
    rhino = Rhino(
        job,
        env.cluster,
        RhinoConfig(
            scheduling_delay=0.2,
            local_fetch_seconds=0.1,
            state_load_seconds=0.2,
            pipelined_handover=True,
            # Pace the pre-copy to a crawl so a kill reliably lands inside it.
            handover_migration_rate=64.0,
            **rhino_kwargs,
        ),
    ).attach()
    return env, job, rhino


def cold_target_index(job, rhino, origin):
    """A counter instance whose machine holds no replica of the origin."""
    group = rhino.replication_manager.group_of(origin.instance_id)
    chain = {machine.name for machine in group.chain}
    for index in range(1, 4):
        candidate = job.instance("count", index)
        if (
            candidate.machine is not origin.machine
            and candidate.machine.name not in chain
        ):
            return index
    raise AssertionError("no cold rebalance target available")


def final_counts(job):
    """Per-key counts from the counter state itself (each key group is
    owned by exactly one instance, so the sum is double-count-free; the
    sink may have restarted empty when its machine was the victim)."""
    finals = {}
    for instance in job.stateful_instances("count"):
        for _group, key, value in instance.state.store.extract_groups(
            0, job.config.num_key_groups
        ):
            if key in KEYS:
                finals[key] = finals.get(key, 0) + value
    return finals


def expected_counts(total=300):
    expected = {}
    for i in range(total):
        key = KEYS[i % len(KEYS)]
        expected[key] = expected.get(key, 0) + 1
    return expected


class TestDeathMidPrecopy:
    def run_scenario(self, victim, kill_delay=0.5):
        env, job, rhino = abort_setup()
        live_feeder(env, "events", KEYS, count=300, interval=0.02)
        env.run(until=2.0)
        origin = job.instance("count", 0)
        target_index = cold_target_index(job, rhino, origin)
        target = job.instance("count", target_index)
        handover = rhino.rebalance("count", [(0, target_index)])
        handover.defused = True
        doomed = origin if victim == "origin" else target

        def killer():
            yield env.sim.timeout(kill_delay)
            env.cluster.kill(doomed.machine)

        env.sim.process(killer())
        env.run(until=8.0)
        return env, job, rhino, handover, doomed

    def test_origin_death_mid_precopy_fails_the_handover(self):
        env, job, rhino, handover, doomed = self.run_scenario("origin")
        assert handover.triggered and not handover.ok
        assert not rhino.handover_manager._inflight

    def test_origin_death_mid_precopy_keeps_exactly_once(self):
        env, job, rhino, handover, doomed = self.run_scenario("origin")
        recovery = rhino.recover_from_failure(doomed.machine)
        env.sim.run(until=recovery)
        env.run(until=40.0)
        assert final_counts(job) == expected_counts()

    def test_target_death_mid_precopy_keeps_exactly_once(self):
        env, job, rhino, handover, doomed = self.run_scenario("target")
        assert handover.triggered and not handover.ok
        recovery = rhino.recover_from_failure(doomed.machine)
        env.sim.run(until=recovery)
        env.run(until=40.0)
        assert final_counts(job) == expected_counts()


# -- the pipelined chaos sweep -----------------------------------------------


class TestPipelinedChaosSmoke:
    def test_pipelined_fault_run_converges_exactly_once(self):
        result = run_chaos(
            seed=0,
            rebalance_at=2.0,
            pipelined_handover=True,
            handover_chunk_bytes=1024 * 1024,
        )
        assert result.violations == []
        assert result.counts == result.expected


@pytest.mark.chaos
class TestPipelinedChaosSweep:
    def test_sweep_of_25_seeds_passes_all_invariants(self):
        results = run_chaos_sweep(
            range(25),
            rebalance_at=2.0,
            pipelined_handover=True,
            handover_chunk_bytes=1024 * 1024,
        )
        failures = [r.row() for r in results if not r.ok]
        assert not failures, f"pipelined chaos sweep failures: {failures}"
