"""Unit tests for handover plan construction and the cold-target path."""

import pytest

from repro.common.errors import ProtocolError
from repro.core import migration
from repro.core.api import Rhino, RhinoConfig
from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic

from tests.engine_fixtures import EngineEnv, live_feeder

KEYS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"]


def counter_graph(parallelism=4):
    graph = StreamGraph("counter")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count",
        StatefulCounterLogic,
        parallelism,
        inputs=[("src", "hash")],
        stateful=True,
    )
    graph.sink("out", inputs=[("count", "forward")])
    return graph


def setup(machines=4, checkpoint_interval=1.0):
    env = EngineEnv(machines=machines)
    env.topic("events", 2)
    config = JobConfig(
        num_key_groups=32,
        virtual_node_count=4,
        checkpoint_interval=checkpoint_interval,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    job = env.job(counter_graph(), config=config).start()
    rhino = Rhino(
        job,
        env.cluster,
        RhinoConfig(
            scheduling_delay=0.1, local_fetch_seconds=0.01, state_load_seconds=0.05
        ),
    ).attach()
    return env, job, rhino


class TestPlanBuilders:
    def test_plan_rejects_empty_vnodes(self):
        with pytest.raises(ProtocolError):
            migration.HandoverPlan("op", 0, 1, [], migration.REBALANCE)

    def test_rebalance_plan_moves_half_by_default(self):
        env, job, rhino = setup()
        plan = migration.plan_rebalance(job, rhino, "count", 0, 1)
        assert plan.reason == migration.REBALANCE
        assert plan.moved_groups == 4  # half of the 8 groups of instance 0
        assert not plan.spawn_target

    def test_rebalance_plan_custom_node_count(self):
        env, job, rhino = setup()
        plan = migration.plan_rebalance(job, rhino, "count", 0, 1, node_count=1)
        assert len(plan.vnodes) == 1
        assert plan.moved_groups == 2  # one virtual node = 8/4 groups

    def test_rescale_plan_spawns_target(self):
        env, job, rhino = setup()
        plan = migration.plan_rescale(
            job, rhino, "count", 0, 4, env.machines[0], share=0.5
        )
        assert plan.spawn_target
        assert plan.target_index == 4
        assert plan.moved_groups == 4

    def test_failure_plan_targets_replica_worker(self):
        env, job, rhino = setup()
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=3.0)
        plan = migration.plan_failure_recovery(job, rhino, "count", 2)
        group = rhino.replication_manager.group_of("count[2]")
        assert plan.target_machine in group.chain
        assert plan.replace_origin
        assert plan.moved_groups == 8  # the whole instance

    def test_failure_plan_requires_alive_replica(self):
        env, job, rhino = setup()
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=3.0)
        group = rhino.replication_manager.group_of("count[2]")
        for machine in group.chain:
            machine.alive = False
        with pytest.raises(ProtocolError):
            migration.plan_failure_recovery(job, rhino, "count", 2)


class TestHorizontalScaling:
    def test_scale_to_cold_worker_bulk_copies(self):
        """A target machine without a replica gets a full bulk copy."""
        env, job, rhino = setup(machines=4)
        cold = env.cluster.add_machine(
            "cold-worker",
            cores=8,
            memory=4 * 1024**3,
            nic_bandwidth=1e9,
            disks=2,
            disk_read_bandwidth=400e6,
            disk_write_bandwidth=280e6,
            disk_capacity=512 * 1024**3,
        )
        live_feeder(env, "events", KEYS, count=200, interval=0.02, nbytes=200)
        env.run(until=3.0)
        state_before = job.total_state_bytes("count")
        process = rhino.rescale("count", add_instances=1, machines=[cold])
        report = env.sim.run(until=process)
        env.run(until=10.0)
        new_instance = job.instance("count", 4)
        # The plan picked a replica-group machine if one existed; force the
        # cold-path assertion only if the new instance is on the cold box.
        assert report is not None
        assert job.graph.operators["count"].parallelism == 5
        assert new_instance.state.owned_ranges()

    def test_cold_target_migration_transfers_full_bytes(self):
        env, job, rhino = setup(machines=4)
        live_feeder(env, "events", KEYS, count=200, interval=0.02, nbytes=500)
        env.run(until=3.0)
        origin = job.instance("count", 0)
        # A machine outside origin's replica group, hosting nothing.
        group = rhino.replication_manager.group_of("count[0]")
        outsider = next(
            m
            for m in env.machines
            if m is not origin.machine and m not in group.chain
        )
        plan = migration.HandoverPlan(
            "count",
            0,
            4,
            list(job.assignments["count"].ranges_of(0)),
            migration.RESCALE,
            target_machine=outsider,
            spawn_target=True,
        )
        process = rhino.handover_manager.execute([plan])
        report = env.sim.run(until=process)
        # Full state moved, not just the delta.
        assert report.migrated_bytes > 0
        new_instance = job.instance("count", 4)
        assert new_instance.machine is outsider
