"""Unit tests for the cluster model (machines, disks, failures, monitor)."""

import pytest

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.sim import Simulator, Interrupt
from repro.sim.flows import FlowScheduler, PortFailed
from repro.cluster import Cluster, ResourceMonitor


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cluster(sim):
    return Cluster(sim)


def make_machine(cluster, name="m0", **kwargs):
    defaults = dict(
        cores=4,
        memory=1000,
        nic_bandwidth=100.0,
        disks=2,
        disk_read_bandwidth=50.0,
        disk_write_bandwidth=25.0,
        disk_capacity=10_000,
        network_latency=0.0,
    )
    defaults.update(kwargs)
    return cluster.add_machine(name, **defaults)


class TestMemory:
    def test_allocate_and_free(self, cluster):
        machine = make_machine(cluster)
        machine.allocate_memory(600)
        assert machine.memory_used == 600
        machine.free_memory(200)
        assert machine.memory_used == 400

    def test_over_allocation_raises(self, cluster):
        machine = make_machine(cluster)
        machine.allocate_memory(900)
        with pytest.raises(OutOfMemoryError) as excinfo:
            machine.allocate_memory(200)
        assert excinfo.value.available == 100

    def test_free_never_goes_negative(self, cluster):
        machine = make_machine(cluster)
        machine.free_memory(50)
        assert machine.memory_used == 0


class TestCompute:
    def test_compute_takes_cpu_time(self, sim, cluster):
        machine = make_machine(cluster)
        process = sim.process(machine.compute(3.0))
        sim.run()
        assert sim.now == 3.0
        assert machine.cpu_busy_seconds == 3.0
        assert process.ok

    def test_cores_limit_concurrency(self, sim, cluster):
        machine = make_machine(cluster, cores=2)

        def task():
            yield sim.process(machine.compute(1.0))

        for _ in range(4):
            sim.process(task())
        sim.run()
        # 4 one-second tasks on 2 cores: 2 seconds of wall-clock.
        assert sim.now == 2.0


class TestDiskIO:
    def test_write_duration_and_space_accounting(self, sim, cluster):
        machine = make_machine(cluster)
        event = machine.disk_write(250.0)
        sim.run(until=event)
        assert sim.now == pytest.approx(10.0)  # 250 B at 25 B/s
        assert machine.disk_used == 250.0

    def test_reads_round_robin_across_disks(self, sim, cluster):
        machine = make_machine(cluster)
        first = machine.disk_read(500.0)
        second = machine.disk_read(500.0)
        done = sim.all_of([first, second])
        sim.run(until=done)
        # Two disks at 50 B/s each serve one read each: 10 s, not 20 s.
        assert sim.now == pytest.approx(10.0)

    def test_disk_free_releases_space(self, sim, cluster):
        machine = make_machine(cluster)
        event = machine.disk_write(400.0)
        sim.run(until=event)
        machine.disk_free(150.0)
        assert machine.disk_used == 250.0


class TestNetworkTransfers:
    def test_transfer_limited_by_nic(self, sim, cluster):
        src = make_machine(cluster, "src")
        dst = make_machine(cluster, "dst")
        event = cluster.transfer(src, dst, 1000.0)
        sim.run(until=event)
        assert sim.now == pytest.approx(10.0)  # 1000 B at 100 B/s

    def test_two_senders_share_receiver_ingress(self, sim, cluster):
        src_a = make_machine(cluster, "a")
        src_b = make_machine(cluster, "b")
        dst = make_machine(cluster, "dst")
        first = cluster.transfer(src_a, dst, 500.0)
        second = cluster.transfer(src_b, dst, 500.0)
        done = sim.all_of([first, second])
        sim.run(until=done)
        # Receiver NIC at 100 B/s is the bottleneck: 1000 B take 10 s.
        assert sim.now == pytest.approx(10.0)

    def test_local_transfer_is_free(self, sim, cluster):
        machine = make_machine(cluster)
        event = cluster.transfer(machine, machine, 10**9)
        sim.run(until=event)
        assert sim.now == 0.0

    def test_network_latency_applies(self, sim, cluster):
        src = make_machine(cluster, "src", network_latency=0.5)
        dst = make_machine(cluster, "dst", network_latency=0.5)
        event = cluster.transfer(src, dst, 100.0)
        sim.run(until=event)
        assert sim.now == pytest.approx(1.5)


class TestFailure:
    def test_kill_fails_inflight_transfer(self, sim, cluster):
        src = make_machine(cluster, "src")
        dst = make_machine(cluster, "dst")

        def proc():
            try:
                yield cluster.transfer(src, dst, 10_000.0)
            except PortFailed:
                return "failed"

        process = sim.process(proc())

        def killer():
            yield sim.timeout(1.0)
            cluster.kill("dst")

        sim.process(killer())
        sim.run(until=process)
        assert process.value == "failed"

    def test_kill_interrupts_registered_processes(self, sim, cluster):
        machine = make_machine(cluster)

        def worker():
            try:
                yield sim.timeout(1000.0)
            except Interrupt as interrupt:
                return interrupt.cause

        worker_process = sim.process(worker())
        machine.register_process(worker_process)

        def killer():
            yield sim.timeout(2.0)
            cluster.kill(machine)

        sim.process(killer())
        sim.run(until=worker_process)
        assert worker_process.value == ("machine-failure", "m0")

    def test_failure_listener_invoked(self, sim, cluster):
        machine = make_machine(cluster)
        observed = []
        machine.on_failure(lambda m: observed.append(m.name))
        cluster.kill(machine)
        assert observed == ["m0"]

    def test_io_on_dead_machine_rejected(self, cluster):
        machine = make_machine(cluster)
        machine.fail()
        with pytest.raises(SimulationError):
            machine.disk_write(10)

    def test_restart_restores_ports(self, sim, cluster):
        src = make_machine(cluster, "src")
        dst = make_machine(cluster, "dst")
        cluster.kill(dst)
        cluster.restart(dst)
        event = cluster.transfer(src, dst, 100.0)
        sim.run(until=event)
        assert sim.now == pytest.approx(1.0)

    def test_alive_machines_excludes_dead(self, cluster):
        make_machine(cluster, "a")
        make_machine(cluster, "b")
        cluster.kill("a")
        assert [m.name for m in cluster.alive_machines()] == ["b"]


class TestMonitor:
    def test_monitor_tracks_network_rate(self, sim, cluster):
        src = make_machine(cluster, "src")
        dst = make_machine(cluster, "dst")
        monitor = ResourceMonitor(sim, cluster, interval=1.0)
        monitor.start()
        cluster.transfer(src, dst, 500.0)
        sim.run(until=10.0)
        # 500 B moved in the first 5 s through 2 NIC ports = 1000 port-bytes.
        assert sum(rate for _, rate in monitor.series("network_rate")) == pytest.approx(
            1000.0
        )

    def test_monitor_tracks_cpu(self, sim, cluster):
        machine = make_machine(cluster, cores=4)
        monitor = ResourceMonitor(sim, cluster, interval=1.0)
        monitor.start()
        sim.process(machine.compute(2.0))
        sim.run(until=4.0)
        # 2 busy core-seconds out of 4 cores * 4 s = 12.5% mean utilization.
        assert monitor.mean("cpu_fraction") == pytest.approx(2.0 / 16.0)

    def test_monitor_stop(self, sim, cluster):
        make_machine(cluster)
        monitor = ResourceMonitor(sim, cluster, interval=1.0)
        monitor.start()
        sim.run(until=3.0)
        monitor.stop()
        count = len(monitor.samples)
        sim.run(until=10.0)
        assert len(monitor.samples) == count
