"""Failure *during* a handover: abort, rollback, replay, retry.

The paper leaves this as future work ("a failure that occurs during a
handover may restart the protocol", §4.1.2); the reproduction implements
the restartable protocol and these tests exercise it.
"""

import pytest

from repro.cluster import FailureDetector
from repro.core.api import Rhino, RhinoConfig
from repro.core.handover import HandoverAborted
from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic

from tests.engine_fixtures import EngineEnv, live_feeder

KEYS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"]
TOTAL = 300


def setup(machines=5, state_load_seconds=1.0, **rhino_kwargs):
    env = EngineEnv(machines=machines)
    env.topic("events", 2)
    graph = StreamGraph("abort")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count", StatefulCounterLogic, 4, inputs=[("src", "hash")], stateful=True
    )
    graph.sink("out", inputs=[("count", "forward")])
    config = JobConfig(
        num_key_groups=32,
        virtual_node_count=4,
        checkpoint_interval=1.0,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    job = env.job(graph, config=config).start()
    rhino = Rhino(
        job,
        env.cluster,
        RhinoConfig(
            scheduling_delay=0.2,
            local_fetch_seconds=0.1,
            state_load_seconds=state_load_seconds,
            **rhino_kwargs,
        ),
    ).attach()
    return env, job, rhino


def expected_counts():
    expected = {}
    for i in range(TOTAL):
        key = KEYS[i % len(KEYS)]
        expected[key] = expected.get(key, 0) + 1
    return expected


def final_counts(job):
    finals = {}
    for key, _t, value, _w in job.sink_results("out"):
        finals[key] = max(finals.get(key, 0), value)
    return finals


class TestTargetDeathMidHandover:
    def run_scenario(self, kill_delay=0.7):
        env, job, rhino = setup()
        live_feeder(env, "events", KEYS, count=TOTAL, interval=0.02)
        env.run(until=2.0)
        target = job.instance("count", 1)
        handover = rhino.rebalance("count", [(0, 1)])
        handover.defused = True

        def killer():
            yield env.sim.timeout(kill_delay)
            env.cluster.kill(target.machine)

        env.sim.process(killer())
        env.run(until=4.0)
        return env, job, rhino, handover, target

    def test_handover_aborts_with_clear_error(self):
        _env, _job, _rhino, handover, _target = self.run_scenario()
        assert handover.triggered and not handover.ok
        with pytest.raises(HandoverAborted):
            handover.value

    def test_origin_reowns_its_vnodes(self):
        env, job, rhino, _handover, _target = self.run_scenario()
        origin = job.instance("count", 0)
        # All 8 of instance 0's key groups are back under its ownership.
        assert job.assignments["count"].ranges_of(0).span() in (0, 8)
        ranges = origin.state.owned_ranges()
        assert sum(hi - lo for lo, hi in ranges) == 8

    def test_exactly_once_preserved_through_abort(self):
        """Counting stays exact: the target's machine also hosted a
        stateful instance, so recovery of that machine plus the aborted
        handover's rollback must together lose and duplicate nothing."""
        env, job, rhino, _handover, target = self.run_scenario()
        # The dead machine hosted count[1]; recover it (its replica path),
        # which also replays the records the aborted handover diverted.
        recovery = rhino.recover_from_failure(target.machine)
        env.sim.run(until=recovery)
        env.run(until=30.0)
        assert final_counts(job) == expected_counts()

    def test_retry_after_abort_succeeds(self):
        env, job, rhino, _handover, target = self.run_scenario()
        recovery = rhino.recover_from_failure(target.machine)
        env.sim.run(until=recovery)
        env.run(until=env.sim.now + 2.0)
        # Retry the rebalance toward a healthy instance.
        retry = rhino.rebalance("count", [(0, 2)])
        report = env.sim.run(until=retry)
        assert report.total_seconds is not None
        env.run(until=40.0)
        assert final_counts(job) == expected_counts()


class TestPartitionMidHandover:
    """A network partition (not a death) interrupts a handover: the
    failure detector's suspicion aborts it, the retry loop re-executes
    after the heal, and counting stays exactly-once throughout."""

    def run_scenario(self):
        env, job, rhino = setup(
            machines=6,
            handover_retry_attempts=6,
            handover_retry_delay=0.5,
        )
        live_feeder(env, "events", KEYS, count=TOTAL, interval=0.02)
        env.run(until=2.0)
        origin = job.instance("count", 0)
        target = job.instance("count", 1)
        assert origin.machine is not target.machine
        detector = FailureDetector(
            env.sim,
            env.cluster,
            machines=job.machines,
            home=origin.machine,
            heartbeat_interval=0.25,
            suspicion_timeout=0.5,
        )
        detector.start()
        rhino.enable_failure_detection(detector)

        def partitioner():
            yield env.sim.timeout(0.5)  # mid-handover (state load takes 1 s)
            env.cluster.partition([[target.machine]])
            yield env.sim.timeout(3.0)
            env.cluster.heal()

        handover = rhino.rebalance("count", [(0, 1)])
        handover.defused = True
        env.sim.process(partitioner())
        env.run(until=4.0)
        return env, job, rhino, detector, handover, target

    def test_suspicion_aborts_in_flight_handover(self):
        env, _job, _rhino, detector, _handover, target = self.run_scenario()
        assert any(
            name == target.machine.name and event == "suspect"
            for _t, name, event in detector.history
        )

    def test_handover_retries_and_succeeds_after_heal(self):
        env, job, _rhino, detector, handover, target = self.run_scenario()
        env.run(until=40.0)
        assert handover.triggered and handover.ok
        report = handover.value
        assert report.total_seconds is not None
        # Suspicion was revoked once the partition healed.
        assert not detector.is_suspected(target.machine)

    def test_exactly_once_across_abort_and_retry(self):
        env, job, _rhino, _detector, handover, _target = self.run_scenario()
        env.run(until=40.0)
        assert handover.ok
        assert final_counts(job) == expected_counts()


class TestRescaleTargetDeath:
    def test_spawned_target_is_removed_on_abort(self):
        env, job, rhino = setup(machines=5)
        live_feeder(env, "events", KEYS, count=TOTAL, interval=0.02)
        env.run(until=2.0)
        spare = job.machines[4]
        rescale = rhino.rescale("count", add_instances=1, machines=[spare])
        rescale.defused = True

        # Find the spawned instance's machine once it exists, then kill it.
        def killer():
            yield env.sim.timeout(0.7)
            spawned = job.instances.get(("count", 4))
            if spawned is not None:
                env.cluster.kill(spawned.machine)

        env.sim.process(killer())
        env.run(until=4.0)
        if rescale.triggered and not rescale.ok:
            # Aborted: the spawned instance is gone from the job.
            assert ("count", 4) not in job.instances

    def test_bystander_death_does_not_abort(self):
        """A machine hosting neither origin nor target only loses acks."""
        env, job, rhino = setup(machines=6)
        live_feeder(env, "events", KEYS, count=TOTAL, interval=0.02)
        env.run(until=2.0)
        origin = job.instance("count", 0)
        target = job.instance("count", 1)
        bystander = next(
            m
            for m in job.machines
            if m.alive
            and m is not origin.machine
            and m is not target.machine
            and all(
                i.machine is not m
                for i in job.all_instances()
            )
        )
        handover = rhino.rebalance("count", [(0, 1)])

        def killer():
            yield env.sim.timeout(0.5)
            env.cluster.kill(bystander)

        env.sim.process(killer())
        report = env.sim.run(until=handover)
        assert report.total_seconds is not None
