"""Shared helpers for engine-level integration tests."""

from repro.sim import Simulator
from repro.cluster import Cluster
from repro.storage.log import DurableLog
from repro.engine.job import Job, JobConfig
from repro.engine.records import Record


class EngineEnv:
    """A small simulated environment: cluster + log + helpers."""

    def __init__(
        self,
        machines=2,
        cores=8,
        nic_bandwidth=1e9,
        memory=4 * 1024**3,
        tracer=None,
    ):
        self.sim = Simulator(tracer=tracer)
        self.cluster = Cluster(self.sim)
        self.machines = self.cluster.add_machines(
            machines,
            prefix="w",
            cores=cores,
            memory=memory,
            nic_bandwidth=nic_bandwidth,
            disks=2,
            disk_read_bandwidth=400e6,
            disk_write_bandwidth=280e6,
            disk_capacity=512 * 1024**3,
            network_latency=0.0005,
        )
        self.log = DurableLog(self.sim, scheduler=self.cluster.scheduler)

    def topic(self, name, partitions):
        self.log.create_topic(name, partitions)
        return name

    def feed(self, topic, records):
        """Append records round-robin across partitions by key hash."""
        partitions = self.log.partition_count(topic)
        for record in records:
            index = hash(record.key) % partitions if partitions > 1 else 0
            self.log.append(topic, index, record)

    def feed_sequence(
        self,
        topic,
        keys,
        count,
        start_time=0.0,
        interval=0.01,
        nbytes=32,
        weight=1,
        partition_by_position=True,
    ):
        """Append ``count`` records cycling through ``keys`` with rising ts."""
        partitions = self.log.partition_count(topic)
        records = []
        for i in range(count):
            key = keys[i % len(keys)]
            record = Record(key, start_time + i * interval, value=i, nbytes=nbytes, weight=weight)
            index = i % partitions if partition_by_position else 0
            self.log.append(topic, index, record)
            records.append(record)
        return records

    def job(self, graph, config=None, storage=None, machines=None):
        config = config or JobConfig(
            num_key_groups=16,
            checkpoint_interval=None,
            exchange_interval=0.05,
            watermark_interval=0.05,
            source_idle_timeout=0.05,
        )
        return Job(
            self.sim,
            self.cluster,
            graph,
            self.log,
            machines or self.machines,
            config=config,
            checkpoint_storage=storage,
        )

    def run(self, until):
        self.sim.run(until=until)


def live_feeder(env, topic, keys, count, interval=0.05, nbytes=32, start_delay=0.0):
    """Append records over simulated time (so creation ts == append time).

    Returns the feeder Process; records cycle through ``keys`` and are
    spread round-robin across partitions.
    """
    partitions = env.log.partition_count(topic)

    def proc():
        if start_delay > 0:
            yield env.sim.timeout(start_delay)
        from repro.engine.records import Record

        for i in range(count):
            yield env.sim.timeout(interval)
            key = keys[i % len(keys)]
            env.log.append(
                topic,
                i % partitions,
                Record(key, env.sim.now, value=i, nbytes=nbytes),
            )

    return env.sim.process(proc(), name=f"feeder:{topic}")


def make_dfs(env, block_size=4 * 1024 * 1024, replication=2, seed=11):
    from repro.storage.dfs import DistributedFileSystem

    return DistributedFileSystem(
        env.sim,
        env.cluster,
        env.machines,
        block_size=block_size,
        replication=replication,
        seed=seed,
    )
