"""Unit and property tests for RangeSet."""

from hypothesis import given, strategies as st

from repro.common.ranges import RangeSet


class TestBasics:
    def test_empty(self):
        rs = RangeSet()
        assert not rs
        assert rs.span() == 0
        assert 5 not in rs

    def test_add_and_contains(self):
        rs = RangeSet([(0, 10)])
        assert 0 in rs and 9 in rs
        assert 10 not in rs

    def test_add_merges_adjacent(self):
        rs = RangeSet([(0, 5), (5, 10)])
        assert sorted(rs) == [(0, 10)]

    def test_add_merges_overlapping(self):
        rs = RangeSet([(0, 6), (4, 10)])
        assert sorted(rs) == [(0, 10)]

    def test_add_keeps_disjoint_separate(self):
        rs = RangeSet([(0, 3), (7, 9)])
        assert sorted(rs) == [(0, 3), (7, 9)]

    def test_empty_range_ignored(self):
        rs = RangeSet([(5, 5), (7, 3)])
        assert not rs

    def test_remove_splits(self):
        rs = RangeSet([(0, 10)])
        rs.remove(4, 6)
        assert sorted(rs) == [(0, 4), (6, 10)]

    def test_remove_trims_edges(self):
        rs = RangeSet([(0, 10)])
        rs.remove(0, 3)
        rs.remove(8, 12)
        assert sorted(rs) == [(3, 8)]

    def test_remove_across_multiple_ranges(self):
        rs = RangeSet([(0, 4), (6, 10), (12, 16)])
        rs.remove(2, 14)
        assert sorted(rs) == [(0, 2), (14, 16)]

    def test_contains_range(self):
        rs = RangeSet([(0, 10)])
        assert rs.contains_range(2, 8)
        assert rs.contains_range(0, 10)
        assert not rs.contains_range(5, 11)

    def test_intersects(self):
        rs = RangeSet([(5, 10)])
        assert rs.intersects(0, 6)
        assert rs.intersects(9, 20)
        assert not rs.intersects(0, 5)
        assert not rs.intersects(10, 20)

    def test_intersection(self):
        rs = RangeSet([(0, 4), (6, 10)])
        assert rs.intersection(2, 8) == [(2, 4), (6, 8)]

    def test_span(self):
        rs = RangeSet([(0, 4), (6, 10)])
        assert rs.span() == 8

    def test_copy_is_independent(self):
        rs = RangeSet([(0, 10)])
        clone = rs.copy()
        clone.remove(0, 5)
        assert sorted(rs) == [(0, 10)]
        assert sorted(clone) == [(5, 10)]

    def test_equality(self):
        assert RangeSet([(0, 5), (5, 8)]) == RangeSet([(0, 8)])


ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 64),
        st.integers(0, 64),
    ),
    max_size=30,
)


class TestProperties:
    @given(ops)
    def test_matches_naive_set_model(self, operations):
        rs = RangeSet()
        model = set()
        for op, a, b in operations:
            lo, hi = min(a, b), max(a, b)
            if op == "add":
                rs.add(lo, hi)
                model.update(range(lo, hi))
            else:
                rs.remove(lo, hi)
                model.difference_update(range(lo, hi))
        for value in range(65):
            assert (value in rs) == (value in model)
        assert rs.span() == len(model)

    @given(ops)
    def test_ranges_stay_normalized(self, operations):
        rs = RangeSet()
        for op, a, b in operations:
            lo, hi = min(a, b), max(a, b)
            if op == "add":
                rs.add(lo, hi)
            else:
                rs.remove(lo, hi)
        ranges = sorted(rs)
        for lo, hi in ranges:
            assert lo < hi
        for (_, prev_hi), (next_lo, _) in zip(ranges, ranges[1:]):
            assert prev_hi < next_lo  # disjoint and non-adjacent
