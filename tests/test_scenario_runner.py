"""End-to-end tests for the batch scenario runner.

Includes the acceptance run: the committed million-user scenario file
(one million+ modeled persons via weighted records, Zipf skew, a flash
crowd) runs through the batch runner, completes a planned drain
mid-burst, and reports passing exactly-once invariants with
weight-correct latency percentiles.
"""

import pathlib

import pytest

from repro.experiments.report import scenario_report
from repro.experiments.runner import peak_rate, run_scenario, run_sweep
from repro.experiments.scenario import Scenario, expand_sweep
from repro.nexmark import TriangularRate

ROOT = pathlib.Path(__file__).parent.parent
MILLION_USER = ROOT / "examples" / "scenarios" / "million_user.json"


def quick_scenario(**overrides):
    data = {
        "name": "quick",
        "sut": "rhino",
        "query": "nbq5",
        "duration": 20.0,
        "warmup": 5.0,
        "cooldown": 20.0,
        "checkpoint_interval": 10.0,
        "streams": {"bids": {"rate": 0.5e6}},
    }
    data.update(overrides)
    return Scenario.from_dict(data)


class TestPeakRate:
    def test_constant(self):
        assert peak_rate(5e6, 60.0) == 5e6

    def test_profile_peak_found(self):
        rate = TriangularRate(floor=1e6, ceiling=8e6, step=0.5e6, period=10.0)
        assert peak_rate(rate, 300.0) == 8e6


class TestRunScenario:
    def test_plain_run_reports_throughput_and_latency(self):
        result = run_scenario(quick_scenario())
        assert result.ok, result.invariants
        assert result.modeled_records > 0
        assert result.records_emitted > 0
        assert result.modeled_records >= result.records_emitted
        assert result.throughput == pytest.approx(0.5e6, rel=0.1)
        assert 0 < result.latency_p50 <= result.latency_p99
        assert result.handovers == []
        assert result.handover_seconds == 0.0

    def test_weight_ledger_balances_without_actions(self):
        result = run_scenario(quick_scenario(name="ledger"))
        assert result.invariants["exactly-once-weighted"] == "ok"

    def test_dict_input_accepted(self):
        result = run_scenario(quick_scenario().to_dict())
        assert result.ok

    def test_failure_action_skips_weight_ledger(self):
        result = run_scenario(
            quick_scenario(
                name="failure",
                actions=[{"at": 10.0, "kind": "failure", "params": {"machine": -1}}],
            )
        )
        assert result.invariants["exactly-once-weighted"].startswith("n/a")
        assert result.ok, result.invariants
        assert len(result.handovers) >= 1

    def test_megaphone_drain_migrates_live(self):
        result = run_scenario(
            quick_scenario(
                name="mega",
                sut="megaphone",
                actions=[{"at": 10.0, "kind": "drain", "params": {"machine": -1}}],
            )
        )
        assert result.invariants["exactly-once-weighted"] == "ok"
        assert result.ok, result.invariants

    def test_result_to_dict_is_json_ready(self):
        import json

        result = run_scenario(quick_scenario(name="json"))
        dumped = json.loads(json.dumps(result.to_dict()))
        assert dumped["name"] == "json"
        assert dumped["invariants"]["drained"] == "ok"


class TestMillionUserAcceptance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(Scenario.load(MILLION_USER))

    def test_models_a_million_users(self, result):
        # >= 1M modeled persons alone, and 2M+ across both streams, while
        # the simulated record count stays thousands (weighted records).
        assert result.modeled_records >= 2_000_000
        assert result.records_emitted < 100_000

    def test_mid_burst_drain_completed(self, result):
        assert len(result.handovers) == 1
        assert result.handover_seconds > 0
        report = result.handovers[0]
        assert report.total_seconds == result.handover_seconds

    def test_exactly_once_invariants_pass(self, result):
        assert result.invariants["exactly-once-weighted"] == "ok"
        assert result.invariants["no-misroutes"] == "ok"
        assert result.invariants["replication-restored"] == "ok"
        assert result.invariants["drained"] == "ok"
        assert result.ok, result.invariants

    def test_weight_correct_latency_percentiles(self, result):
        assert 0 < result.latency_p50 <= result.latency_p99
        assert result.latency_mean > 0

    def test_report_renders(self, result):
        text = scenario_report([result])
        assert "million-user-flash-crowd" in text
        assert "p99 (ms)" in text
        assert "ok" in text


class TestRunSweep:
    def test_sweep_runs_every_point_and_streams_progress(self):
        points = expand_sweep(
            quick_scenario(duration=10.0, cooldown=15.0).to_dict(),
            {"seed": [1, 2]},
        )
        seen = []
        results = run_sweep(points, progress=lambda r: seen.append(r.name))
        assert [r.name for r in results] == seen
        assert all(r.ok for r in results), [r.invariants for r in results]

    def test_same_scenario_is_deterministic(self):
        scenario = quick_scenario(duration=10.0, cooldown=15.0)
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.latency_p99 == b.latency_p99
        assert a.modeled_records == b.modeled_records
        assert a.invariants == b.invariants
