"""Unit tests for latency series and job metrics."""

import pytest

from repro.engine.metrics import JobMetrics, LatencySeries


class TestLatencySeries:
    def test_record_and_summaries(self):
        series = LatencySeries()
        for t in range(10):
            series.record(float(t), 0.1 * (t + 1))
        assert len(series) == 10
        assert series.mean() == pytest.approx(0.55)
        assert series.minimum() == pytest.approx(0.1)
        assert series.maximum() == pytest.approx(1.0)

    def test_window_filters_by_time(self):
        series = LatencySeries()
        for t in range(10):
            series.record(float(t), float(t))
        assert series.mean(start=5.0) == pytest.approx(7.0)
        assert series.mean(end=4.0) == pytest.approx(2.0)
        assert series.values(start=3.0, end=5.0) == [3.0, 4.0, 5.0]

    def test_percentile(self):
        series = LatencySeries()
        for t in range(100):
            series.record(float(t), float(t))
        assert series.percentile(0.5) == pytest.approx(50.0)
        assert series.percentile(0.99) == pytest.approx(99.0)

    def test_empty_series_summaries_are_zero(self):
        series = LatencySeries()
        assert series.mean() == 0.0
        assert series.percentile(0.99) == 0.0
        assert series.minimum() == 0.0

    def test_downsampling_bounds_memory(self):
        series = LatencySeries(max_samples=100)
        for t in range(10_000):
            series.record(float(t), 1.0)
        assert len(series.samples) <= 100
        # Later samples are still admitted at the degraded resolution.
        assert series.samples[-1][0] > 9000

    def test_downsampled_series_remains_time_ordered(self):
        series = LatencySeries(max_samples=64)
        for t in range(5000):
            series.record(float(t), 1.0)
        times = [t for t, _l in series.samples]
        assert times == sorted(times)


class TestJobMetrics:
    def test_per_operator_series(self):
        metrics = JobMetrics()
        metrics.sample_latency(1.0, 0.5, "join")
        metrics.sample_latency(2.0, 0.7, "agg")
        metrics.sample_latency(3.0, 0.9, "join")
        assert len(metrics.latency) == 3
        assert len(metrics.latency_by_operator["join"]) == 2
        assert len(metrics.latency_by_operator["agg"]) == 1
