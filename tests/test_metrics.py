"""Unit tests for latency series and job metrics."""

import pytest

from repro.engine.metrics import JobMetrics, LatencySeries


class TestLatencySeries:
    def test_record_and_summaries(self):
        series = LatencySeries()
        for t in range(10):
            series.record(float(t), 0.1 * (t + 1))
        assert len(series) == 10
        assert series.mean() == pytest.approx(0.55)
        assert series.minimum() == pytest.approx(0.1)
        assert series.maximum() == pytest.approx(1.0)

    def test_window_filters_by_time(self):
        series = LatencySeries()
        for t in range(10):
            series.record(float(t), float(t))
        assert series.mean(start=5.0) == pytest.approx(7.0)
        assert series.mean(end=4.0) == pytest.approx(2.0)
        assert series.values(start=3.0, end=5.0) == [3.0, 4.0, 5.0]

    def test_percentile_nearest_rank(self):
        # Nearest-rank: the ceil(q*n)-th smallest value, 1-based.  With
        # 100 samples 0..99 the median is the 50th smallest = 49.0 (the
        # old int(q*n) indexing over-read integer ranks by one).
        series = LatencySeries()
        for t in range(100):
            series.record(float(t), float(t))
        assert series.percentile(0.5) == pytest.approx(49.0)
        assert series.percentile(0.99) == pytest.approx(98.0)
        assert series.percentile(1.0) == pytest.approx(99.0)
        assert series.percentile(0.0) == pytest.approx(0.0)

    def test_percentile_small_series(self):
        series = LatencySeries()
        for latency in (1.0, 2.0, 3.0, 4.0):
            series.record(0.0, latency)
        assert series.percentile(0.5) == pytest.approx(2.0)
        assert series.percentile(0.75) == pytest.approx(3.0)
        assert series.percentile(0.76) == pytest.approx(4.0)

    def test_weighted_percentile_respects_weight(self):
        # One weight-99 fast sample and one weight-1 slow sample: the
        # slow record is 1% of real traffic, so p50 (and even p90) must
        # report the fast latency.  The unweighted definition returned
        # the slow one.
        series = LatencySeries()
        series.record(0.0, 0.1, weight=99)
        series.record(1.0, 10.0, weight=1)
        assert series.percentile(0.5) == pytest.approx(0.1)
        assert series.percentile(0.9) == pytest.approx(0.1)
        assert series.percentile(0.999) == pytest.approx(10.0)

    def test_weighted_mean(self):
        series = LatencySeries()
        series.record(0.0, 0.1, weight=99)
        series.record(1.0, 10.0, weight=1)
        assert series.mean() == pytest.approx((0.1 * 99 + 10.0) / 100)
        assert series.total_weight() == 100

    def test_weighted_p99_under_skew(self):
        # 9 heavy fast samples (weight 1000 each) + 90 light slow ones:
        # slow records are ~1% of modeled traffic, so p99 straddles the
        # boundary -- weight-unaware counting would report the slow tail
        # as the median.
        series = LatencySeries()
        for i in range(9):
            series.record(float(i), 0.05, weight=1000)
        for i in range(90):
            series.record(10.0 + i, 5.0, weight=1)
        assert series.percentile(0.5) == pytest.approx(0.05)
        assert series.percentile(0.99) == pytest.approx(0.05)
        assert series.percentile(0.995) == pytest.approx(5.0)

    def test_default_weight_is_one(self):
        series = LatencySeries()
        series.record(0.0, 1.0)
        assert series.samples == [(0.0, 1.0, 1)]
        assert series.total_weight() == 1

    def test_empty_series_summaries_are_zero(self):
        series = LatencySeries()
        assert series.mean() == 0.0
        assert series.percentile(0.99) == 0.0
        assert series.minimum() == 0.0

    def test_downsampling_bounds_memory(self):
        series = LatencySeries(max_samples=100)
        for t in range(10_000):
            series.record(float(t), 1.0)
        assert len(series.samples) <= 100
        # Later samples are still admitted at the degraded resolution.
        assert series.samples[-1][0] > 9000

    def test_downsampled_series_remains_time_ordered(self):
        series = LatencySeries(max_samples=64)
        for t in range(5000):
            series.record(float(t), 1.0)
        times = [t for t, _l, _w in series.samples]
        assert times == sorted(times)


class TestJobMetrics:
    def test_per_operator_series(self):
        metrics = JobMetrics()
        metrics.sample_latency(1.0, 0.5, "join")
        metrics.sample_latency(2.0, 0.7, "agg")
        metrics.sample_latency(3.0, 0.9, "join")
        assert len(metrics.latency) == 3
        assert len(metrics.latency_by_operator["join"]) == 2
        assert len(metrics.latency_by_operator["agg"]) == 1

    def test_sample_latency_forwards_weight(self):
        metrics = JobMetrics()
        metrics.sample_latency(1.0, 0.5, "join", weight=7)
        assert metrics.latency.total_weight() == 7
        assert metrics.latency_by_operator["join"].total_weight() == 7
