"""End-to-end tests of Rhino's protocols on the engine.

These are the protocol-correctness tests of the reproduction: exactly-once
counting across rebalances, rescales, and machine failures, plus the
proactive-replication invariants.
"""

import pytest

from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic
from repro.core.api import Rhino, RhinoConfig

from tests.engine_fixtures import EngineEnv, live_feeder

KEYS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"]


def counter_graph(source_parallelism=2, counter_parallelism=4):
    graph = StreamGraph("counter")
    graph.source("src", topic="events", parallelism=source_parallelism)
    graph.operator(
        "count",
        StatefulCounterLogic,
        counter_parallelism,
        inputs=[("src", "hash")],
        stateful=True,
        measure_latency=True,
    )
    graph.sink("out", inputs=[("count", "forward")])
    return graph


def make_env(machines=4):
    env = EngineEnv(machines=machines)
    env.topic("events", 2)
    return env


def make_job(env, checkpoint_interval=1.0):
    config = JobConfig(
        num_key_groups=32,
        virtual_node_count=4,
        checkpoint_interval=checkpoint_interval,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    return env.job(counter_graph(), config=config)


def make_rhino(env, job, **overrides):
    defaults = dict(
        replication_factor=1,
        scheduling_delay=0.1,
        local_fetch_seconds=0.01,
        state_load_seconds=0.05,
    )
    defaults.update(overrides)
    return Rhino(job, env.cluster, RhinoConfig(**defaults)).attach()


def final_counts(job):
    finals = {}
    for key, _t, value, _w in job.sink_results("out"):
        finals[key] = max(finals.get(key, 0), value)
    return finals


def expected_counts(total_records):
    expected = {}
    for i in range(total_records):
        key = KEYS[i % len(KEYS)]
        expected[key] = expected.get(key, 0) + 1
    return expected


class TestProactiveReplication:
    def test_checkpoints_are_replicated_to_chains(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=5.0)
        assert job.coordinator.has_completed()
        for instance in job.stateful_instances("count"):
            group = rhino.replication_manager.group_of(instance.instance_id)
            for member in group.chain:
                assert rhino.replicator.store_on(member).has_complete(
                    instance.instance_id
                )

    def test_replica_bytes_track_state_bytes(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=60, interval=0.02, nbytes=100)
        env.run(until=5.0)
        replicated = sum(
            rhino.replica_bytes_on(machine) for machine in job.machines
        )
        # r=1: the replicas together hold at least the live state of the
        # last checkpoint (they may briefly hold more before GC).
        assert replicated > 0
        assert replicated >= job.total_state_bytes("count") * 0.5

    def test_no_replication_without_checkpoints(self):
        env = make_env()
        job = make_job(env, checkpoint_interval=None).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=30, interval=0.02)
        env.run(until=3.0)
        assert rhino.replicator.stats.checkpoints_replicated == 0


class TestRebalance:
    def test_rebalance_moves_vnodes_and_state(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=100, interval=0.02)
        env.run(until=3.0)
        origin = job.instance("count", 0)
        target = job.instance("count", 1)
        origin_groups_before = job.assignments["count"].ranges_of(0).span()
        process = rhino.rebalance("count", [(0, 1)])
        report = env.sim.run(until=process)
        env.run(until=8.0)
        assert report.total_seconds is not None
        assert job.assignments["count"].ranges_of(0).span() < origin_groups_before
        assert origin.state.owned_ranges() is not None
        # Target now owns the union of its range and the moved vnodes.
        moved = report.moved_state_bytes
        assert moved >= 0
        assert target.state.owned_ranges()

    def test_rebalance_preserves_exactly_once(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=200, interval=0.02)

        def trigger():
            yield env.sim.timeout(2.0)
            yield rhino.rebalance("count", [(0, 1), (2, 3)])

        env.sim.process(trigger())
        env.run(until=12.0)
        assert final_counts(job) == expected_counts(200)

    def test_rebalance_report_contains_breakdown(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=2.0)
        process = rhino.rebalance("count", [(0, 1)])
        report = env.sim.run(until=process)
        assert report.scheduling_seconds > 0
        assert report.loading_seconds > 0
        assert rhino.reports == [report]


class TestRescale:
    def test_rescale_adds_owning_instances(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=100, interval=0.02)
        env.run(until=2.5)
        process = rhino.rescale("count", add_instances=2)
        report = env.sim.run(until=process)
        env.run(until=8.0)
        assert report is not None
        assert job.graph.operators["count"].parallelism == 6
        new_a = job.instance("count", 4)
        new_b = job.instance("count", 5)
        assert new_a.state.owned_ranges()
        assert new_b.state.owned_ranges()

    def test_rescale_preserves_exactly_once(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=200, interval=0.02)

        def trigger():
            yield env.sim.timeout(2.0)
            yield rhino.rescale("count", add_instances=2)

        env.sim.process(trigger())
        env.run(until=12.0)
        assert final_counts(job) == expected_counts(200)

    def test_new_instances_process_migrated_keys(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=400, interval=0.02)

        def trigger():
            yield env.sim.timeout(2.0)
            yield rhino.rescale("count", add_instances=2)

        env.sim.process(trigger())
        env.run(until=15.0)
        spawned = [job.instance("count", 4), job.instance("count", 5)]
        assert any(i.records_processed > 0 for i in spawned)


class TestFailureRecovery:
    def run_failure_scenario(self, env, job, rhino, kill_at=3.0, total=240):
        live_feeder(env, "events", KEYS, count=total, interval=0.02)
        victim = job.instance("count", 2).machine

        def chaos():
            yield env.sim.timeout(kill_at)
            env.cluster.kill(victim)
            yield rhino.recover_from_failure(victim)

        chaos_process = env.sim.process(chaos())
        env.run(until=20.0)
        assert chaos_process.ok, chaos_process
        return victim

    def test_failure_recovery_preserves_counts(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        self.run_failure_scenario(env, job, rhino)
        assert final_counts(job) == expected_counts(240)

    def test_recovered_instance_runs_on_replica_worker(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        group_before = rhino.replication_manager.group_of("count[2]")
        victim = self.run_failure_scenario(env, job, rhino)
        replacement = job.instance("count", 2)
        assert replacement.machine is not victim
        assert replacement.machine in group_before.chain

    def test_failure_report_shows_local_fetch(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        self.run_failure_scenario(env, job, rhino)
        report = rhino.reports[-1]
        assert report.reason == "failure"
        # Rhino fetches the replica locally: no bulk network migration.
        assert report.migrated_bytes == 0
        assert report.fetching_seconds < 1.0

    def test_chains_are_repaired_after_failure(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        victim = self.run_failure_scenario(env, job, rhino)
        for group in rhino.replication_manager.groups.values():
            assert victim not in group.chain

    def test_replay_is_filtered_to_migrated_ranges(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        self.run_failure_scenario(env, job, rhino)
        # Survivors installed timestamp filters at the marker...
        survivors = [
            i
            for i in job.stateful_instances("count")
            if i.index != 2 and i.replay_filter is not None
        ]
        assert survivors
        # ...and the sources dropped replayed records of surviving ranges
        # at ingest (Rhino replays only for the recovered partition).
        sources = job.source_instances()
        assert all(s.replay_filter is not None for s in sources)
        assert sum(s.records_dropped for s in sources) > 0

    def test_recovery_without_checkpoint_fails(self):
        env = make_env()
        job = make_job(env, checkpoint_interval=None).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=40, interval=0.02)
        env.run(until=1.0)
        victim = job.instance("count", 2).machine
        env.cluster.kill(victim)
        recovery = rhino.recover_from_failure(victim)
        recovery.defused = True
        env.run(until=5.0)
        assert not recovery.ok


class TestDrain:
    def test_drain_moves_all_state_off_machine(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=200, interval=0.02)
        env.run(until=3.0)
        victim = job.instance("count", 2).machine
        process = rhino.drain(victim)
        report = env.sim.run(until=process)
        env.run(until=10.0)
        assert report is not None
        for instance in job.stateful_instances("count"):
            if instance.machine is victim:
                ranges = instance.state.owned_ranges()
                assert not ranges or all(lo >= hi for lo, hi in ranges)

    def test_drain_preserves_exactly_once(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=200, interval=0.02)

        def trigger():
            yield env.sim.timeout(2.0)
            yield rhino.drain(job.instance("count", 1).machine)

        env.sim.process(trigger())
        env.run(until=12.0)
        assert final_counts(job) == expected_counts(200)

    def test_drain_involves_no_replay(self):
        env = make_env()
        job = make_job(env).start()
        rhino = make_rhino(env, job)
        live_feeder(env, "events", KEYS, count=200, interval=0.02)
        env.run(until=3.0)
        offsets_before = [s.cursor.offset for s in job.source_instances()]
        process = rhino.drain(job.instance("count", 2).machine)
        env.sim.run(until=process)
        offsets_after = [s.cursor.offset for s in job.source_instances()]
        # Sources never rewound: planned drains migrate deltas, not logs.
        assert all(a >= b for a, b in zip(offsets_after, offsets_before))
        assert all(s.replay_filter is None for s in job.source_instances())
