"""Unit and property tests for the LSM store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StorageError
from repro.common.ranges import RangeSet
from repro.storage.kvs import LSMStore


@pytest.fixture
def store():
    return LSMStore("s0", memtable_limit=10_000, compaction_trigger=4)


class TestReadWrite:
    def test_put_get(self, store):
        store.put(1, "k", "v")
        assert store.get(1, "k") == "v"

    def test_get_missing_returns_none(self, store):
        assert store.get(1, "nope") is None

    def test_overwrite(self, store):
        store.put(1, "k", "old")
        store.put(1, "k", "new")
        assert store.get(1, "k") == "new"

    def test_delete(self, store):
        store.put(1, "k", "v")
        store.delete(1, "k")
        assert store.get(1, "k") is None

    def test_read_through_flushed_table(self, store):
        store.put(1, "k", "v")
        store.flush()
        assert store.get(1, "k") == "v"

    def test_newer_memtable_shadows_table(self, store):
        store.put(1, "k", "old")
        store.flush()
        store.put(1, "k", "new")
        assert store.get(1, "k") == "new"

    def test_delete_shadows_flushed_put(self, store):
        store.put(1, "k", "v")
        store.flush()
        store.delete(1, "k")
        assert store.get(1, "k") is None

    def test_contains(self, store):
        store.put(1, "k", "v")
        assert (1, "k") in store
        assert (1, "z") not in store


class TestAppendPattern:
    def test_append_builds_list(self, store):
        store.append(1, "k", "a")
        store.append(1, "k", "b")
        assert store.get(1, "k") == ["a", "b"]

    def test_append_across_flushes_preserves_order(self, store):
        store.append(1, "k", "a")
        store.flush()
        store.append(1, "k", "b")
        store.flush()
        store.append(1, "k", "c")
        assert store.get(1, "k") == ["a", "b", "c"]

    def test_append_onto_put_base(self, store):
        store.put(1, "k", ["base"])
        store.flush()
        store.append(1, "k", "x")
        assert store.get(1, "k") == ["base", "x"]

    def test_delete_resets_append_chain(self, store):
        store.append(1, "k", "a")
        store.flush()
        store.delete(1, "k")
        store.flush()
        store.append(1, "k", "b")
        assert store.get(1, "k") == ["b"]


class TestFlushAndCompaction:
    def test_flush_empty_returns_none(self, store):
        assert store.flush() is None

    def test_needs_flush_threshold(self):
        store = LSMStore("s", memtable_limit=100)
        store.put(1, "k", "v", nbytes=50)
        assert not store.needs_flush
        store.put(1, "j", "w", nbytes=60)
        assert store.needs_flush

    def test_flush_returns_table_with_bytes(self, store):
        store.put(1, "k", "v", nbytes=123)
        table = store.flush()
        assert table.size_bytes == 123
        assert store.tables == [table]

    def test_compaction_merges_tables(self, store):
        for i in range(4):
            store.put(1, f"k{i}", i, nbytes=10)
            store.flush()
        assert store.needs_compaction
        result = store.compact()
        assert len(store.tables) == 1
        assert result.read_bytes == 40
        assert result.write_bytes == 40
        assert all(store.get(1, f"k{i}") == i for i in range(4))

    def test_compaction_drops_shadowed_versions(self, store):
        store.put(1, "k", "old", nbytes=100)
        store.flush()
        store.put(1, "k", "new", nbytes=10)
        store.flush()
        result = store.compact()
        assert result.write_bytes == 10
        assert store.get(1, "k") == "new"

    def test_compaction_drops_tombstones(self, store):
        store.put(1, "k", "v", nbytes=50)
        store.flush()
        store.delete(1, "k")
        store.flush()
        store.compact()
        assert store.total_bytes == 0
        assert store.get(1, "k") is None

    def test_compaction_merges_append_chains(self, store):
        store.append(1, "k", "a", nbytes=5)
        store.flush()
        store.append(1, "k", "b", nbytes=5)
        store.flush()
        store.compact()
        assert store.get(1, "k") == ["a", "b"]

    def test_compaction_with_single_table_is_noop(self, store):
        store.put(1, "k", "v")
        store.flush()
        assert store.compact() is None


class TestCheckpoints:
    def test_checkpoint_captures_delta_only(self, store):
        store.put(1, "a", 1, nbytes=10)
        first, _ = store.checkpoint(1)
        store.put(1, "b", 2, nbytes=20)
        second, _ = store.checkpoint(2)
        assert first.delta_bytes == 10
        assert second.delta_bytes == 20
        assert second.total_bytes == 30

    def test_checkpoint_flushes_memtable(self, store):
        store.put(1, "a", 1, nbytes=10)
        checkpoint, flushed = store.checkpoint(1)
        assert flushed is not None
        assert store.memtable.size_bytes == 0
        assert checkpoint.manifest.table_ids == (flushed.table_id,)

    def test_checkpoint_after_compaction_ships_new_table(self, store):
        for i in range(2):
            store.put(1, f"k{i}", i, nbytes=10)
            store.flush()
        store.checkpoint(1)
        store.compact()
        checkpoint, _ = store.checkpoint(2)
        # Compaction output counts as new data to replicate.
        assert checkpoint.delta_bytes == 20
        assert len(checkpoint.manifest.table_ids) == 1

    def test_empty_checkpoint(self, store):
        checkpoint, flushed = store.checkpoint(1)
        assert flushed is None
        assert checkpoint.delta_bytes == 0
        assert checkpoint.total_bytes == 0

    def test_restore_from_checkpoint_tables(self, store):
        store.put(1, "a", "x", nbytes=10)
        store.put(2, "b", "y", nbytes=10)
        checkpoint, _ = store.checkpoint(1)

        replica = LSMStore("s0-replica")
        replica.restore(checkpoint.full_tables)
        assert replica.get(1, "a") == "x"
        assert replica.get(2, "b") == "y"
        assert replica.total_bytes == 20


class TestRangedIngest:
    def test_ingest_restricted_to_moved_ranges(self):
        # An origin's files keep entries of groups it dropped earlier; a
        # ranged ingest must not let them shadow the target's own values.
        origin = LSMStore("origin", owned=RangeSet([(0, 8)]))
        origin.put(3, "k", "stale", nbytes=10)
        origin.put(5, "m", "moved", nbytes=10)
        origin.flush()
        origin.drop_groups(0, 4)  # group 3 gone, bytes stay in the file

        target = LSMStore("target", owned=RangeSet([(0, 4)]))
        target.put(3, "k", "fresh", nbytes=10)
        target.adopt_groups(4, 8)
        target.ingest_tables(origin.tables, ranges=[(4, 8)])
        assert target.get(5, "m") == "moved"
        assert target.get(3, "k") == "fresh"

    def test_unrestricted_ingest_keeps_old_behavior(self):
        origin = LSMStore("origin")
        origin.put(3, "k", "new", nbytes=10)
        origin.flush()
        target = LSMStore("target")
        target.put(3, "k", "old", nbytes=10)
        target.flush()
        target.ingest_tables(origin.tables)
        assert target.get(3, "k") == "new"

    def test_reingesting_same_table_widens_the_view(self):
        origin = LSMStore("origin")
        origin.put(1, "a", "x", nbytes=10)
        origin.put(5, "b", "y", nbytes=10)
        origin.flush()
        target = LSMStore("target")
        target.ingest_tables(origin.tables, ranges=[(0, 4)])
        assert target.get(5, "b") is None
        target.ingest_tables(origin.tables, ranges=[(4, 8)])
        assert len(target.tables) == 1  # same file, wider slice
        assert target.get(1, "a") == "x"
        assert target.get(5, "b") == "y"

    def test_slice_accounting_counts_only_visible_bytes(self):
        origin = LSMStore("origin")
        origin.put(1, "a", "x", nbytes=10)
        origin.put(5, "b", "y", nbytes=30)
        origin.flush()
        target = LSMStore("target")
        target.ingest_tables(origin.tables, ranges=[(4, 8)])
        assert target.tables[0].size_bytes == 30
        assert target.total_bytes == 30
        assert target.bytes_in_groups(0, 4) == 0

    def test_compaction_resolves_slices_into_plain_tables(self):
        origin = LSMStore("origin")
        origin.put(3, "k", "stale", nbytes=10)
        origin.put(5, "m", "moved", nbytes=10)
        origin.flush()
        target = LSMStore("target")
        target.put(3, "k", "fresh", nbytes=10)
        target.flush()
        target.ingest_tables(origin.tables, ranges=[(4, 8)])
        target.compact()
        assert len(target.tables) == 1
        assert target.get(3, "k") == "fresh"
        assert target.get(5, "m") == "moved"


class TestOwnership:
    def make_store(self):
        return LSMStore("s", owned=RangeSet([(0, 8)]))

    def test_write_to_unowned_group_rejected(self):
        store = self.make_store()
        with pytest.raises(StorageError):
            store.put(9, "k", "v")

    def test_read_of_unowned_group_is_none(self):
        store = self.make_store()
        store.put(3, "k", "v")
        store.drop_groups(0, 8)
        assert store.get(3, "k") is None

    def test_drop_groups_returns_released_bytes(self):
        store = self.make_store()
        store.put(1, "a", "x", nbytes=10)
        store.put(5, "b", "y", nbytes=20)
        store.flush()
        released = store.drop_groups(4, 8)
        assert released == 20
        assert store.total_bytes == 10

    def test_drop_groups_evicts_memtable_entries(self):
        store = self.make_store()
        store.put(5, "b", "y", nbytes=20)
        store.drop_groups(4, 8)
        assert store.memtable.size_bytes == 0

    def test_adopt_then_write(self):
        store = self.make_store()
        store.adopt_groups(8, 16)
        store.put(12, "k", "v")
        assert store.get(12, "k") == "v"

    def test_compaction_discards_unowned_entries(self):
        store = self.make_store()
        store.put(1, "a", "x", nbytes=10)
        store.flush()
        store.put(5, "b", "y", nbytes=20)
        store.flush()
        store.drop_groups(4, 8)
        store.compact()
        assert store.tables[0].size_bytes == 10

    def test_bytes_in_groups(self):
        store = self.make_store()
        store.put(1, "a", "x", nbytes=10)
        store.put(6, "b", "y", nbytes=30)
        store.flush()
        store.put(6, "c", "z", nbytes=5)
        assert store.bytes_in_groups(0, 4) == 10
        assert store.bytes_in_groups(4, 8) == 35

    def test_extract_groups_resolves_values(self):
        store = self.make_store()
        store.append(2, "k", "a")
        store.flush()
        store.append(2, "k", "b")
        store.put(6, "j", "v")
        extracted = store.extract_groups(0, 8)
        assert extracted == [(2, "k", ["a", "b"]), (6, "j", "v")]

    def test_ingest_pairs(self):
        source = self.make_store()
        source.put(2, "k", "v")
        target = LSMStore("t", owned=RangeSet([(0, 8)]))
        target.ingest_pairs(source.extract_groups(0, 8))
        assert target.get(2, "k") == "v"


# -- property-based: the store behaves like a dict under random operations --

operations = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "append", "flush", "compact"]),
        st.integers(0, 7),  # group
        st.integers(0, 5),  # key
        st.integers(0, 100),  # value payload
    ),
    max_size=60,
)


class TestModelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_store_matches_model(self, ops):
        store = LSMStore("model-test", memtable_limit=200, compaction_trigger=3)
        model = {}
        for op, group, key, value in ops:
            if op == "put":
                store.put(group, key, value, nbytes=10)
                model[(group, key)] = value
            elif op == "delete":
                store.delete(group, key)
                model.pop((group, key), None)
            elif op == "append":
                store.append(group, key, value, nbytes=10)
                existing = model.get((group, key))
                if existing is None:
                    model[(group, key)] = [value]
                elif isinstance(existing, list):
                    model[(group, key)] = existing + [value]
                else:
                    model[(group, key)] = [existing, value]
            elif op == "flush":
                store.flush()
            elif op == "compact":
                store.compact()
        for group in range(8):
            for key in range(6):
                assert store.get(group, key) == model.get((group, key)), (
                    group,
                    key,
                    ops,
                )

    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_checkpoint_restore_roundtrip(self, ops):
        store = LSMStore("ckpt-test", memtable_limit=200, compaction_trigger=3)
        for op, group, key, value in ops:
            if op == "put":
                store.put(group, key, value, nbytes=10)
            elif op == "delete":
                store.delete(group, key)
            elif op == "append":
                store.append(group, key, value, nbytes=10)
            elif op == "flush":
                store.flush()
            elif op == "compact":
                store.compact()
        checkpoint, _ = store.checkpoint(1)
        restored = LSMStore("restored")
        restored.restore(checkpoint.full_tables)
        for group in range(8):
            for key in range(6):
                assert restored.get(group, key) == store.get(group, key)
