"""Tests for the NEXMark workload: events, generator, and query graphs."""

import pytest

from repro.sim import Simulator
from repro.storage.log import DurableLog
from repro.nexmark import (
    AUCTION_BYTES,
    BID_BYTES,
    PERSON_BYTES,
    NexmarkGenerator,
    StreamSpec,
    TriangularRate,
    nbq5,
    nbq8,
    nbqx,
)


class TestEvents:
    def test_record_sizes_match_paper(self):
        assert PERSON_BYTES == 206
        assert AUCTION_BYTES == 269
        assert BID_BYTES == 32


class TestTriangularRate:
    def test_starts_at_floor(self):
        rate = TriangularRate(floor=1e6, ceiling=8e6, step=0.5e6, period=10.0)
        assert rate(0.0) == 1e6

    def test_rises_by_step_every_period(self):
        rate = TriangularRate(floor=1e6, ceiling=8e6, step=0.5e6, period=10.0)
        assert rate(10.0) == 1.5e6
        assert rate(25.0) == 2e6

    def test_reaches_ceiling_then_descends(self):
        rate = TriangularRate(floor=1e6, ceiling=8e6, step=0.5e6, period=10.0)
        leg = (8e6 - 1e6) / 0.5e6 * 10.0  # 140 s up
        assert rate(leg - 1.0) == pytest.approx(7.5e6)
        assert rate(leg + 1.0) == 8e6
        assert rate(leg + 11.0) == 7.5e6

    def test_cycle_repeats(self):
        rate = TriangularRate(floor=1e6, ceiling=8e6, step=0.5e6, period=10.0)
        cycle = 2 * (8e6 - 1e6) / 0.5e6 * 10.0
        for t in (0.0, 35.0, 140.0, 170.0):
            assert rate(t) == rate(t + cycle)

    def test_invalid_profile_rejected(self):
        from repro.common.errors import EngineError

        with pytest.raises(EngineError):
            TriangularRate(floor=5e6, ceiling=1e6)

    def test_ascending_leg_reaches_ceiling(self):
        # Regression: the ascent used to top out at ceiling - step, with
        # the peak only held by the descending leg's first period.
        rate = TriangularRate(floor=1e6, ceiling=8e6, step=0.5e6, period=10.0)
        leg = (8e6 - 1e6) / 0.5e6 * 10.0  # 140 s of ascent
        assert rate(leg + 5.0) == 8e6  # the ascending leg's final level
        # The level just before must be one step below the peak ...
        assert rate(leg - 5.0) == 7.5e6
        # ... and the peak is held for exactly one period per cycle.
        peak_seconds = sum(
            10.0 for t in range(0, 280, 10) if rate(t + 5.0) == 8e6
        )
        assert peak_seconds == 10.0

    def test_full_cycle_shape_is_a_symmetric_triangle(self):
        # Pin the §5.5 1 -> 8 -> 1 ramp level by level: every level from
        # floor to ceiling appears on the way up, then the interior
        # levels walk back down, and each level is held for one period.
        rate = TriangularRate(floor=1e6, ceiling=8e6, step=0.5e6, period=10.0)
        levels = [rate(t + 5.0) / 1e6 for t in range(0, 280, 10)]
        ascent = [1.0 + 0.5 * i for i in range(15)]  # 1.0 .. 8.0
        descent = [7.5 - 0.5 * i for i in range(13)]  # 7.5 .. 1.5
        assert levels == pytest.approx(ascent + descent)
        # The cycle then repeats from the floor.
        assert rate(285.0) == 1e6


class TestGenerator:
    def make_generator(self, rate=32_000.0, tick=0.5, partitions=4):
        sim = Simulator()
        log = DurableLog(sim)
        log.create_topic("bids", partitions)
        generator = NexmarkGenerator(sim, log, seed=7, tick=tick)
        generator.add_stream(
            StreamSpec("bids", BID_BYTES, rate, key_space=1000, keys_per_tick=2)
        )
        return sim, log, generator

    def test_rate_is_respected_in_bytes(self):
        sim, _log, generator = self.make_generator(rate=32_000.0)
        generator.start()
        sim.run(until=10.0)
        # 32 KB/s for 10 s = 320 KB (within rounding of weights).
        assert generator.bytes_emitted == pytest.approx(320_000, rel=0.05)

    def test_records_spread_over_partitions(self):
        sim, log, generator = self.make_generator()
        generator.start()
        sim.run(until=5.0)
        offsets = log.end_offsets("bids")
        assert all(offset > 0 for offset in offsets)

    def test_timestamps_strictly_increase_per_partition(self):
        sim, log, generator = self.make_generator()
        generator.start()
        sim.run(until=5.0)
        for index in range(4):
            partition = log.partition("bids", index)
            timestamps = [r.timestamp for r in partition.records]
            assert timestamps == sorted(timestamps)
            assert len(set(timestamps)) == len(timestamps)

    def test_deterministic_with_same_seed(self):
        def run():
            sim, log, generator = self.make_generator()
            generator.start()
            sim.run(until=3.0)
            return [
                (r.key, r.weight)
                for r in log.partition("bids", 0).records
            ]

        assert run() == run()

    def test_stop_halts_emission(self):
        sim, _log, generator = self.make_generator()
        generator.start()
        sim.run(until=2.0)
        emitted = generator.records_emitted
        generator.stop()
        sim.run(until=5.0)
        assert generator.records_emitted == emitted

    def test_varying_rate_changes_emission(self):
        sim = Simulator()
        log = DurableLog(sim)
        log.create_topic("bids", 1)
        generator = NexmarkGenerator(sim, log, seed=7, tick=0.5)
        generator.add_stream(
            StreamSpec(
                "bids",
                BID_BYTES,
                TriangularRate(floor=1000.0, ceiling=8000.0, step=500.0, period=10.0),
                key_space=100,
            )
        )
        generator.start()
        sim.run(until=10.0)
        early = generator.bytes_emitted
        sim.run(until=80.0)
        late_rate = (generator.bytes_emitted - early) / 70.0
        assert late_rate > early / 10.0  # ramped up

    def test_weights_carry_volume(self):
        sim, log, generator = self.make_generator(rate=320_000.0)
        generator.start()
        sim.run(until=1.0)
        partition = log.partition("bids", 0)
        assert any(r.weight > 1 for r in partition.records)

    def test_weight_accounting_per_topic(self):
        sim, log, generator = self.make_generator(rate=32_000.0)
        generator.start()
        sim.run(until=5.0)
        assert generator.weight_emitted == generator.weight_by_topic["bids"]
        assert generator.bytes_emitted == generator.bytes_by_topic["bids"]
        total = sum(
            r.weight
            for index in range(4)
            for r in log.partition("bids", index).records
        )
        assert total == generator.weight_emitted


class TestStreamSpecValidation:
    def test_rejects_non_positive_keys_per_tick(self):
        from repro.common.errors import EngineError

        with pytest.raises(EngineError, match="keys_per_tick"):
            StreamSpec("bids", BID_BYTES, 1000.0, keys_per_tick=0)

    def test_rejects_non_positive_record_bytes(self):
        from repro.common.errors import EngineError

        with pytest.raises(EngineError, match="record_bytes"):
            StreamSpec("bids", 0, 1000.0)

    def test_rejects_empty_key_space(self):
        from repro.common.errors import EngineError

        with pytest.raises(EngineError, match="key_space"):
            StreamSpec("bids", BID_BYTES, 1000.0, key_space=0)

    def test_rejects_negative_constant_rate(self):
        from repro.common.errors import EngineError

        with pytest.raises(EngineError, match="rate"):
            StreamSpec("bids", BID_BYTES, -1.0)


class TestQueryGraphs:
    def test_nbq5_shape(self):
        graph = nbq5(source_dop=4, stateful_dop=8)
        graph.validate()
        assert graph.sources["bids"].parallelism == 4
        assert graph.operators["agg"].parallelism == 8
        assert graph.operators["agg"].stateful
        assert "out" in graph.sinks

    def test_nbq8_shape(self):
        graph = nbq8(source_dop=4, stateful_dop=8)
        graph.validate()
        assert set(graph.sources) == {"persons", "auctions"}
        join_inputs = graph.inbound_edges("join")
        assert len(join_inputs) == 2
        assert {e.input_index for e in join_inputs} == {0, 1}

    def test_nbq8_window_is_twelve_hours(self):
        graph = nbq8(source_dop=2, stateful_dop=2)
        logic = graph.operators["join"].logic_factory()
        assert logic.size == 12 * 3600.0

    def test_nbqx_has_five_stateful_subqueries(self):
        graph = nbqx(source_dop=2, stateful_dop=4)
        graph.validate()
        stateful = graph.stateful_operators()
        assert len(stateful) == 5
        gaps = []
        for op in stateful:
            logic = op.logic_factory()
            if hasattr(logic, "gap"):
                gaps.append(logic.gap)
        assert sorted(gaps) == [1800.0, 3600.0, 5400.0, 7200.0]

    def test_nbqx_session_gaps_are_distinct_factories(self):
        graph = nbqx(source_dop=2, stateful_dop=2)
        logics = {
            name: graph.operators[name].logic_factory()
            for name in graph.operators
            if name.startswith("session_join")
        }
        assert len({l.gap for l in logics.values()}) == 4
