"""Property tests: the generator tracks its rate profiles and key
distributions across seeds.

Two families of checks:

* **rate fidelity** -- bytes emitted over a window match the numeric
  integral of the configured rate profile within tolerance, for
  constant, triangular, diurnal, and flash-crowd profiles;
* **key fidelity** -- drawn key frequencies match the requested
  distribution: chi-squared for uniform, top-k mass and rank
  monotonicity for Zipf, hot-fraction and churn for hot sets.
"""

import pytest

from repro.common.rng import make_rng
from repro.nexmark import (
    DiurnalRate,
    FlashCrowdRate,
    HotKeys,
    NexmarkGenerator,
    StreamSpec,
    TriangularRate,
    UniformKeys,
    ZipfKeys,
)
from repro.sim import Simulator
from repro.storage.log import DurableLog


def integral(rate, horizon, dt=0.05):
    """Numeric integral of a rate profile over ``[0, horizon]`` (bytes)."""
    if not callable(rate):
        return rate * horizon
    steps = int(horizon / dt)
    return sum(rate(dt * (i + 0.5)) for i in range(steps)) * dt


def emitted_bytes(rate, seed, horizon=60.0, partitions=2, record_bytes=32):
    sim = Simulator()
    log = DurableLog(sim)
    log.create_topic("bids", partitions)
    generator = NexmarkGenerator(sim, log, seed=seed, tick=0.5)
    generator.add_stream(
        StreamSpec("bids", record_bytes, rate, key_space=1000, keys_per_tick=2)
    )
    generator.start()
    sim.run(until=horizon)
    return generator.bytes_emitted


RATE_PROFILES = {
    "constant": lambda: 64_000.0,
    "triangular": lambda: TriangularRate(
        floor=16_000.0, ceiling=64_000.0, step=8_000.0, period=5.0
    ),
    "diurnal": lambda: DiurnalRate(base=32_000.0, peak=96_000.0, period=60.0),
    "flash-crowd": lambda: FlashCrowdRate(64_000.0, [(20.0, 10.0, 3.0)]),
}


class TestRateFidelity:
    @pytest.mark.parametrize("profile", sorted(RATE_PROFILES))
    @pytest.mark.parametrize("seed", [7, 11])
    def test_emitted_bytes_track_the_profile(self, profile, seed):
        rate = RATE_PROFILES[profile]()
        expected = integral(rate, 60.0)
        actual = emitted_bytes(rate, seed)
        assert actual == pytest.approx(expected, rel=0.1), profile

    def test_burst_window_carries_the_extra_bytes(self):
        flat = emitted_bytes(64_000.0, seed=7)
        burst = emitted_bytes(
            FlashCrowdRate(64_000.0, [(20.0, 10.0, 3.0)]), seed=7
        )
        # The 10 s x3 burst adds ~2 x base x 10 s of traffic.
        assert burst - flat == pytest.approx(2 * 64_000.0 * 10.0, rel=0.1)


def draw(distribution, count, seed, t=0.0):
    rng = make_rng(seed, "fidelity")
    counts = {}
    for _ in range(count):
        key = distribution.sample(rng, t)
        counts[key] = counts.get(key, 0) + 1
    return counts


class TestUniformKeys:
    @pytest.mark.parametrize("seed", [3, 5, 17])
    def test_chi_squared_within_bounds(self, seed):
        space, n = 64, 32_000
        counts = draw(UniformKeys(space), n, seed)
        expected = n / space
        chi2 = sum(
            (counts.get(k, 0) - expected) ** 2 / expected for k in range(space)
        )
        # df = 63: mean 63, sd ~11.2; 4 sigma keeps false failures out
        # while catching any real bias.
        assert chi2 < 63 + 4 * (2 * 63) ** 0.5, chi2


class TestZipfKeys:
    def theoretical_top_mass(self, n, s, k):
        # The continuous harmonic approximation the sampler inverts.
        return (k ** (1.0 - s) - 1.0) / (n ** (1.0 - s) - 1.0)

    @pytest.mark.parametrize("seed", [3, 5, 17])
    def test_top_k_mass_matches_theory(self, seed):
        n, s, k, samples = 1000, 1.2, 10, 30_000
        zipf = ZipfKeys(n, exponent=s, spread=False)  # key == rank - 1
        counts = draw(zipf, samples, seed)
        top_mass = sum(counts.get(key, 0) for key in range(k)) / samples
        assert top_mass == pytest.approx(
            self.theoretical_top_mass(n, s, k), abs=0.03
        )

    @pytest.mark.parametrize("seed", [3, 5])
    def test_rank_frequencies_decrease(self, seed):
        zipf = ZipfKeys(1000, exponent=1.3, spread=False)
        counts = draw(zipf, 30_000, seed)
        # Bucket ranks into powers of two; mass per bucket must decay
        # from the head (per-key frequency strictly falls with rank).
        per_key = []
        for lo, hi in ((0, 1), (1, 10), (10, 100), (100, 1000)):
            mass = sum(counts.get(key, 0) for key in range(lo, hi))
            per_key.append(mass / (hi - lo))
        assert per_key == sorted(per_key, reverse=True)

    def test_spread_scatters_but_preserves_mass(self):
        n, s, samples = 1000, 1.2, 20_000
        plain = ZipfKeys(n, exponent=s, spread=False)
        spread = ZipfKeys(n, exponent=s, spread=True)
        seed = 9
        plain_counts = draw(plain, samples, seed)
        spread_counts = draw(spread, samples, seed)
        # Same rank draws, different key labels: the sorted frequency
        # vectors are identical, but the hottest keys move apart.
        assert sorted(plain_counts.values()) == sorted(spread_counts.values())
        assert max(spread_counts, key=spread_counts.get) == spread.key_of_rank(1)
        # Neighbouring ranks land far apart in key space (rank 1 is key 0
        # by construction; rank 2 jumps by the coprime multiplier).
        assert spread.key_of_rank(2) != 1
        assert abs(spread.key_of_rank(2) - spread.key_of_rank(1)) > 1


class TestHotKeys:
    @pytest.mark.parametrize("seed", [3, 5, 17])
    def test_hot_fraction_is_respected(self, seed):
        hot = HotKeys(
            UniformKeys(100_000), hot_count=8, hot_fraction=0.6, seed=21
        )
        counts = draw(hot, 20_000, seed)
        hot_set = set(hot.hot_set(0.0))
        hot_mass = sum(c for key, c in counts.items() if key in hot_set)
        # Base draws rarely hit the 8 hot keys out of 100k, so the hot
        # mass is the hot_fraction almost exactly.
        assert hot_mass / 20_000 == pytest.approx(0.6, abs=0.02)

    def test_churn_rotates_the_hot_set_deterministically(self):
        hot = HotKeys(
            UniformKeys(100_000),
            hot_count=8,
            hot_fraction=0.5,
            churn_interval=15.0,
            seed=21,
        )
        first = list(hot.hot_set(0.0))
        second = list(hot.hot_set(15.1))
        assert first != second
        # Epochs are pure functions of (seed, epoch): revisiting one
        # reproduces its hot set exactly.
        assert list(hot.hot_set(14.9)) == first
        assert list(hot.hot_set(16.0)) == second

    def test_no_churn_means_a_stable_hot_set(self):
        hot = HotKeys(UniformKeys(1000), hot_count=4, hot_fraction=0.5)
        assert hot.hot_set(0.0) == hot.hot_set(1e6)


class TestGeneratorKeyFidelity:
    @pytest.mark.parametrize("seed", [7, 11])
    def test_zipf_skew_survives_the_generator_plumbing(self, seed):
        """Keys drawn through the full generator under a varying rate
        keep the configured Zipf head mass."""
        n, s, k = 1000, 1.2, 10
        sim = Simulator()
        log = DurableLog(sim)
        log.create_topic("bids", 2)
        zipf = ZipfKeys(n, exponent=s, spread=False)
        generator = NexmarkGenerator(sim, log, seed=seed, tick=0.5)
        generator.add_stream(
            StreamSpec(
                "bids",
                32,
                TriangularRate(
                    floor=16_000.0, ceiling=64_000.0, step=8_000.0, period=5.0
                ),
                keys_per_tick=8,
                key_distribution=zipf,
            )
        )
        generator.start()
        sim.run(until=120.0)
        counts = {}
        for partition in range(2):
            for record in log.partition("bids", partition).records:
                counts[record.key] = counts.get(record.key, 0) + 1
        samples = sum(counts.values())
        assert samples > 2_000
        top_mass = sum(counts.get(key, 0) for key in range(k)) / samples
        expected = (k ** (1.0 - s) - 1.0) / (n ** (1.0 - s) - 1.0)
        # Fewer draws than the direct-sampling tests: wider tolerance.
        assert top_mass == pytest.approx(expected, abs=0.06)
