"""Quorum control-plane tests: the PR 8 tentpole and satellites.

Covers the ControlGroup end to end through phase-targeted chaos runs
(leader kills at every handover phase, kills mid-membership-change,
5-replica double kills), the stale-leader fencing regression (a deposed
primary replaying a buffered ``reconfigure()`` is a no-op), the journal
linearizability checker itself (known-good and deliberately broken
histories), torn-tail truncation on verified journal reads, DFS epoch
fencing, the majority-safety fault-plan validation error paths, and the
``control_replicas=1`` default-off guarantees.  The ``chaos``-marked
25-seed minority-failure sweeps at the bottom are the acceptance runs CI
executes separately.
"""

import json
import os
import types

import pytest

from repro.cluster import Cluster
from repro.common.errors import (
    CorruptionError,
    ProtocolError,
    SimulationError,
    StaleEpochError,
)
from repro.core.api import RhinoConfig
from repro.core.journal import ControlJournal
from repro.experiments.scenarios.chaos import (
    CONTROL_SWEEP_PHASES,
    run_chaos,
    run_control_quorum_sweep,
)
from repro.faults import (
    CONTROL_CRASH,
    CONTROL_KINDS,
    CONTROL_PARTITION,
    CRASH_RESTART,
    SLOW_LINK,
    FaultEvent,
    FaultPlan,
    check_bounded_mttr,
    check_journal_linearizable,
)
from repro.faults.invariants import InvariantViolation
from repro.sim import Simulator
from repro.storage.dfs import DistributedFileSystem

from tests.engine_fixtures import EngineEnv, live_feeder
from tests.test_rhino_integration import (
    KEYS,
    counter_graph,
    make_job,
    make_rhino,
)

QUORUM_STAT_KEYS = {"detect", "replay", "resume", "total", "epoch", "leader"}


def assert_quorum_recovered(result):
    assert result.violations == []
    assert result.counts == result.expected
    assert result.control_stats is not None
    assert result.failover_stats, "the control group never failed over"
    for stats in result.failover_stats:
        assert set(stats) == QUORUM_STAT_KEYS
        assert stats["total"] >= stats["detect"] >= 0.0


# -- the tentpole end to end: minority kills at protocol phases ---------------


class TestQuorumPhaseKills:
    @pytest.mark.parametrize(
        "record_kind",
        ("handover.accepted", "handover.prepared", "handover.marker",
         "handover.state-shipped", "handover.ack"),
    )
    def test_leader_kill_at_phase(self, record_kind):
        result = run_chaos(
            3,
            control_replicas=3,
            fault_count=0,
            rebalance_at=2.0,
            control_kill_at_record=record_kind,
        )
        assert_quorum_recovered(result)
        stats = result.control_stats
        assert stats["replicas"] == 3
        assert stats["epoch"] > 1
        assert stats["elections"] >= 1
        # The whole journal is committed and the group healed.
        assert stats["committed_seq"] > 0
        assert len(stats["members"]) == 3

    def test_marker_phase_kill_fences_stale_markers(self):
        # Markers minted by the deposed leader are already in flight when
        # the election bumps the epoch: workers must discard (not ack)
        # them, which shows up as fencing rejections.
        result = run_chaos(
            3,
            control_replicas=3,
            fault_count=0,
            rebalance_at=2.0,
            control_kill_at_record="handover.marker",
        )
        assert_quorum_recovered(result)
        assert result.control_stats["fencing_rejections"] > 0

    def test_leader_kill_mid_membership_change(self):
        result = run_chaos(
            5,
            machines=7,
            control_replicas=3,
            fault_count=0,
            rebalance_at=2.0,
            membership_change_at=4.0,
            control_kill_at_record="control.member-joint",
        )
        assert_quorum_recovered(result)
        stats = result.control_stats
        # The next leader resumed and completed the joint change: the
        # final membership is 3-wide but differs from the seed group.
        assert len(stats["members"]) == 3
        assert set(stats["members"]) != {"w-0", "w-1", "w-2"}

    def test_five_replica_double_kill_with_membership_change(self):
        result = run_chaos(
            5,
            machines=9,
            control_replicas=5,
            fault_count=0,
            rebalance_at=2.0,
            control_kill_count=2,
            membership_change_at=4.0,
            control_kill_at_record="handover.marker",
        )
        assert_quorum_recovered(result)
        assert result.control_stats["replicas"] == 5
        assert len(result.control_stats["members"]) == 5

    def test_generated_control_plan_run(self):
        # No phase targeting: the seeded plan itself mixes control-crash /
        # control-partition events with worker faults.
        result = run_chaos(11, control_replicas=3)
        assert result.violations == []
        assert result.counts == result.expected
        stats = result.control_stats
        assert stats is not None
        assert stats["committed_seq"] > 0
        # Quiescence required the group whole again, so every control
        # fault the plan injected has been healed.
        assert len(stats["members"]) == 3

    def test_kill_listener_rejects_majority_kill_counts(self):
        with pytest.raises(ValueError, match="minority"):
            run_chaos(
                3,
                control_replicas=3,
                fault_count=0,
                rebalance_at=2.0,
                control_kill_at_record="handover.accepted",
                control_kill_count=2,
            )

    def test_control_group_excludes_single_standby_failover(self):
        with pytest.raises(ValueError, match="subsumes"):
            run_chaos(3, control_replicas=3, coordinator_failover=True)


# -- satellite (c): stale-leader exactly-once -------------------------------


def quorum_env(machines=4, replicas=3):
    env = EngineEnv(machines=machines)
    env.topic("events", 2)
    job = make_job(env).start()
    rhino = make_rhino(env, job)
    group = rhino.enable_control_group(env.machines[:replicas])
    return env, job, rhino, group


class TestStaleLeaderFencing:
    def test_replayed_reconfigure_after_heal_is_fenced_and_noop(self):
        env, job, rhino, group = quorum_env()
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=3.0)

        # A client buffers a command under the current leader...
        stale = group.fence_token()
        old_leader = group.leader.name

        # ...the leader dies and a new epoch is elected...
        group.crash_member(old_leader)
        env.run(until=6.0)
        assert not rhino.failover.down
        assert group.epoch > stale

        # ...the deposed member heals and the client replays the command.
        group.restart_member(old_leader)
        env.run(until=7.0)

        accepted_before = sum(
            1 for r in group.journal.records if r.kind == "handover.accepted"
        )
        rejections_before = group.fencing_rejections
        replay = rhino.reconfigure(
            "rebalance", op_name="count", moves=[(0, 1)], fence_token=stale
        )
        replay.process.defused = True
        env.run(until=9.0)

        # Fenced before anything was mutated: the driver failed with
        # StaleEpochError, journaled nothing, produced no report.
        assert replay.done and not replay.succeeded
        with pytest.raises(StaleEpochError):
            replay.process.value
        assert group.fencing_rejections == rejections_before + 1
        assert (
            sum(1 for r in group.journal.records if r.kind == "handover.accepted")
            == accepted_before
        )
        assert replay.reports == []

        # Resubmitting under the live epoch applies exactly once.
        retry = rhino.reconfigure("rebalance", op_name="count", moves=[(0, 1)])
        retry.process.defused = True
        env.run(until=15.0)
        assert retry.succeeded
        assert retry.report is not None
        assert (
            sum(1 for r in group.journal.records if r.kind == "handover.accepted")
            == accepted_before + 1
        )
        group.stop()

    def test_fence_token_of_live_epoch_passes(self):
        env, _job, rhino, group = quorum_env()
        group.check_fence(group.fence_token())  # no raise
        group.check_fence(None)  # unstamped commands are never fenced
        assert group.fencing_rejections == 0
        group.stop()


# -- satellite (a): CRC32 + torn-tail truncation on journal reads -----------


def journal_env():
    sim = Simulator()
    cluster = Cluster(sim)
    machines = cluster.add_machines(
        2,
        prefix="j",
        cores=2,
        memory=1024**3,
        nic_bandwidth=1e9,
        disks=1,
        disk_read_bandwidth=400e6,
        disk_write_bandwidth=280e6,
        disk_capacity=64 * 1024**3,
        network_latency=0.0005,
    )
    journal = ControlJournal(sim, machines[0], machines[1], cluster)
    return sim, journal, machines


def append_three(journal):
    journal.append("checkpoint.triggered", checkpoint=1, expected=[])
    journal.append("groups.assigned", groups={})
    journal.append("checkpoint.aborted", checkpoint=1)


class TestTornTailTruncation:
    def test_clean_log_reads_back_unchanged(self):
        _, journal, _ = journal_env()
        append_three(journal)
        records = journal.read_records(committed_seq=0)
        assert [r.seq for r in records] == [1, 2, 3]
        assert journal.truncated_records == 0

    def test_torn_tail_is_truncated_above_the_committed_floor(self):
        _, journal, _ = journal_env()
        append_three(journal)
        bytes_before = journal.durable_bytes
        torn_bytes = journal.records[-1].nbytes
        journal.records[-1].payload["checkpoint"] = 999  # tear the tail
        records = journal.read_records(committed_seq=0)
        assert [r.seq for r in records] == [1, 2]
        assert journal.truncated_records == 1
        assert journal.durable_bytes == bytes_before - torn_bytes

    def test_tear_in_the_middle_drops_the_whole_suffix(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.records[1].payload["groups"] = {"x": ["j-0"]}
        records = journal.read_records(committed_seq=1)
        assert [r.seq for r in records] == [1]
        assert journal.truncated_records == 2

    def test_corruption_below_the_committed_floor_raises(self):
        # Committed records were majority-acknowledged: a bad CRC there is
        # real corruption, never a torn tail, and must fail loudly.
        _, journal, _ = journal_env()
        append_three(journal)
        journal.records[0].payload["checkpoint"] = 999
        with pytest.raises(CorruptionError):
            journal.read_records(committed_seq=3)

    def test_replay_survives_a_torn_tail(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.records[-1].payload["checkpoint"] = 999
        state = journal.replay()
        # The torn abort record is gone: checkpoint 1 is still pending.
        assert state.pending == [1]


# -- satellite (d): the linearizability checker itself ----------------------


class TestJournalLinearizabilityChecker:
    def test_known_good_history_passes(self):
        _, journal, _ = journal_env()
        append_three(journal)
        check_journal_linearizable(journal)

    def test_empty_journal_passes(self):
        _, journal, _ = journal_env()
        check_journal_linearizable(journal)

    def test_seq_gap_is_reported(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.records[1].seq = 5
        with pytest.raises(InvariantViolation, match="seq gap"):
            check_journal_linearizable(journal)

    def test_time_regression_is_reported(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.records[0].time = 1.0  # later than its successors
        with pytest.raises(InvariantViolation, match="time regressed"):
            check_journal_linearizable(journal)

    def test_epoch_regression_is_reported(self):
        _, journal, _ = journal_env()
        append_three(journal)
        # Re-stamp the CRC so only the ordering (not integrity) is broken.
        journal.records[0].epoch = 2
        journal.records[0].crc32 = journal.records[0]._checksum()
        with pytest.raises(InvariantViolation, match="epoch regressed"):
            check_journal_linearizable(journal)

    def test_corrupt_record_fails_verification(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.records[2].payload["checkpoint"] = -1
        with pytest.raises(CorruptionError):
            check_journal_linearizable(journal)

    def test_quorum_commit_log_in_order_passes(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.group = types.SimpleNamespace(
            committed_seq=3, commit_log=[(1, 0), (2, 0), (3, 1)]
        )
        check_journal_linearizable(journal)

    def test_committed_seq_beyond_tail_is_reported(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.group = types.SimpleNamespace(committed_seq=5, commit_log=[])
        with pytest.raises(InvariantViolation, match="beyond journal tail"):
            check_journal_linearizable(journal)

    def test_reordered_commit_history_is_reported(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.group = types.SimpleNamespace(
            committed_seq=3, commit_log=[(1, 0), (3, 0), (2, 0)]
        )
        with pytest.raises(InvariantViolation, match="commit order"):
            check_journal_linearizable(journal)

    def test_regressed_commit_epochs_are_reported(self):
        _, journal, _ = journal_env()
        append_three(journal)
        journal.group = types.SimpleNamespace(
            committed_seq=3, commit_log=[(1, 1), (2, 0), (3, 1)]
        )
        with pytest.raises(InvariantViolation, match="epochs regressed"):
            check_journal_linearizable(journal)


class TestBoundedMttrChecker:
    def test_within_bound_passes(self):
        check_bounded_mttr([0.5, 1.2, 0.0], 2.0)
        check_bounded_mttr([], 0.1)

    def test_slow_takeover_is_reported_with_its_index(self):
        with pytest.raises(InvariantViolation, match=r"\(1, 9.5\)"):
            check_bounded_mttr([0.5, 9.5], 2.0)


# -- DFS epoch fencing -------------------------------------------------------


class TestDfsFencing:
    def make_dfs(self):
        env = EngineEnv(machines=3)
        dfs = DistributedFileSystem(
            env.sim, env.cluster, env.machines, block_size=4 * 1024 * 1024
        )
        return env, dfs

    def test_stale_epoch_write_is_rejected_before_placing_blocks(self):
        env, dfs = self.make_dfs()
        dfs.set_fence(2)
        with pytest.raises(StaleEpochError):
            dfs.write("/ckpt/old", 1024, env.machines[0], epoch=1)
        assert dfs.namenode.files == {}

    def test_current_epoch_and_unstamped_writes_pass(self):
        env, dfs = self.make_dfs()
        dfs.set_fence(2)
        dfs.write("/ckpt/new", 1024, env.machines[0], epoch=2)
        dfs.write("/ckpt/legacy", 1024, env.machines[0])  # unfenced caller
        env.run(until=5.0)
        assert set(dfs.namenode.files) == {"/ckpt/new", "/ckpt/legacy"}

    def test_fence_is_monotonic(self):
        _, dfs = self.make_dfs()
        dfs.set_fence(3)
        dfs.set_fence(1)  # late, lower: ignored
        assert dfs.fence_epoch == 3

    def test_unfenced_dfs_ignores_epochs(self):
        env, dfs = self.make_dfs()
        dfs.write("/ckpt/any", 1024, env.machines[0], epoch=0)
        env.run(until=5.0)
        assert "/ckpt/any" in dfs.namenode.files


# -- satellite (b): fault-plan validation error paths ------------------------


MEMBERS = ("w-0", "w-1", "w-2")
WORKERS = ["w-0", "w-1", "w-2", "w-3", "w-4", "w-5"]


class TestControlFaultPlanValidation:
    def test_control_kind_requires_control_members(self):
        plan = FaultPlan([FaultEvent(3.0, CONTROL_CRASH, ["w-0"], 1.0)])
        with pytest.raises(SimulationError, match="requires control_members"):
            plan.validate(WORKERS)

    def test_control_kind_must_target_a_member(self):
        plan = FaultPlan([FaultEvent(3.0, CONTROL_PARTITION, ["w-4"], 1.0)])
        with pytest.raises(SimulationError, match="not a control-group member"):
            plan.validate(WORKERS, control_members=MEMBERS)

    def test_generate_rejects_control_kinds_without_members(self):
        with pytest.raises(SimulationError, match="require control_members"):
            FaultPlan.generate(7, WORKERS, kinds=CONTROL_KINDS)

    def test_overlapping_control_crashes_downing_a_majority_rejected(self):
        plan = FaultPlan(
            [
                FaultEvent(3.0, CONTROL_CRASH, ["w-0"], 3.0),
                FaultEvent(4.0, CONTROL_CRASH, ["w-1"], 3.0),
            ]
        )
        with pytest.raises(SimulationError, match="majority"):
            plan.validate(WORKERS, control_members=MEMBERS)

    def test_worker_fault_on_a_member_counts_toward_the_majority(self):
        # A crash-restart of a member's machine silences its vote just as
        # surely as a control-crash: the union must stay a minority.
        plan = FaultPlan(
            [
                FaultEvent(3.0, CONTROL_CRASH, ["w-0"], 3.0),
                FaultEvent(4.0, CRASH_RESTART, ["w-1"], 3.0),
            ]
        )
        with pytest.raises(SimulationError, match="majority"):
            plan.validate(WORKERS, control_members=MEMBERS)

    def test_sequential_minority_kills_validate(self):
        plan = FaultPlan(
            [
                FaultEvent(3.0, CONTROL_CRASH, ["w-0"], 1.0),
                FaultEvent(6.0, CONTROL_PARTITION, ["w-1"], 1.0),
                FaultEvent(9.0, CRASH_RESTART, ["w-3"], 1.0),  # non-member
            ]
        )
        assert plan.validate(WORKERS, control_members=MEMBERS) is plan

    def test_non_silencing_faults_never_trip_the_majority_check(self):
        plan = FaultPlan(
            [
                FaultEvent(3.0, CONTROL_CRASH, ["w-0"], 3.0),
                FaultEvent(4.0, SLOW_LINK, ["w-1", "w-2"], 3.0),
            ]
        )
        assert plan.validate(WORKERS, control_members=MEMBERS) is plan

    def test_five_member_group_tolerates_two_overlapping_kills(self):
        five = ("w-0", "w-1", "w-2", "w-3", "w-4")
        plan = FaultPlan(
            [
                FaultEvent(3.0, CONTROL_CRASH, ["w-0"], 3.0),
                FaultEvent(4.0, CONTROL_CRASH, ["w-1"], 3.0),
            ]
        )
        assert plan.validate(WORKERS, control_members=five) is plan
        plan.events.append(FaultEvent(4.5, CONTROL_PARTITION, ["w-2"], 3.0))
        with pytest.raises(SimulationError, match="majority"):
            plan.validate(WORKERS, control_members=five)

    def test_generated_control_plans_always_validate(self):
        for seed in range(8):
            plan = FaultPlan.generate(
                seed,
                WORKERS,
                count=6,
                kinds=CONTROL_KINDS + (CRASH_RESTART,),
                protect=MEMBERS,
                control_members=MEMBERS,
            )
            plan.validate(WORKERS, control_members=MEMBERS)
            for event in plan.events:
                if event.kind in CONTROL_KINDS:
                    assert all(t in MEMBERS for t in event.targets)


# -- default-off guarantees --------------------------------------------------


class TestDefaultOff:
    def test_default_config_is_unreplicated(self):
        assert RhinoConfig().control_replicas == 1

    def test_zero_replicas_rejected(self):
        with pytest.raises(ProtocolError, match="control_replicas"):
            RhinoConfig(control_replicas=0)

    def test_unreplicated_run_has_no_control_stats(self):
        result = run_chaos(7)
        assert result.ok
        assert result.control_stats is None
        assert result.failover_stats == []

    def test_run_chaos_bounds_replica_count(self):
        with pytest.raises(ValueError, match="control_replicas"):
            run_chaos(3, machines=4, control_replicas=5)


# -- acceptance sweeps (chaos-marked; CI runs them separately) ---------------


def _artifacts_dir(tmp_path):
    # CI sets CHAOS_ARTIFACTS_DIR so the verdict files it uploads are the
    # ones the sweep wrote; locally they land in the test's tmp dir.
    return os.environ.get("CHAOS_ARTIFACTS_DIR") or str(tmp_path)


@pytest.mark.chaos
class TestControlQuorumSweeps:
    def test_three_replica_25_seed_sweep(self, tmp_path):
        artifacts = _artifacts_dir(tmp_path)
        results = run_control_quorum_sweep(
            range(25), replicas=3, artifacts_dir=artifacts
        )
        assert len(results) == 25
        failures = [r for r in results if not r.ok]
        assert failures == []
        with open(os.path.join(artifacts, "invariant-verdict-3r.json")) as fh:
            verdict = json.load(fh)
        assert verdict["failures"] == 0
        assert verdict["seeds"] == 25
        phases = {row["phase"] for row in verdict["runs"]}
        assert phases == set(CONTROL_SWEEP_PHASES)

    def test_five_replica_25_seed_sweep(self, tmp_path):
        artifacts = _artifacts_dir(tmp_path)
        results = run_control_quorum_sweep(
            range(100, 125), replicas=5, machines=9, artifacts_dir=artifacts
        )
        failures = [r for r in results if not r.ok]
        assert failures == []
        # Kill sizes rotate through every minority for 5 replicas: 1 and 2.
        with open(os.path.join(artifacts, "invariant-verdict-5r.json")) as fh:
            verdict = json.load(fh)
        assert {row["kill_count"] for row in verdict["runs"]} == {1, 2}
