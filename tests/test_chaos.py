"""End-to-end chaos runs: seeded fault plans against the full pipeline.

Fast smoke seeds run in tier-1; the wide sweep is marked ``chaos`` and is
excluded by default (``addopts = -m 'not chaos'``) -- CI runs it as a
separate job with ``-m chaos``.
"""

import json

import pytest

from repro.faults import ALL_KINDS, CRASH_RESTART, PARTITION
from repro.obs.tracer import Tracer
from repro.experiments.scenarios.chaos import run_chaos, run_chaos_sweep


def canonical_trace(tracer):
    """Serialize a trace to a canonical JSON string for replay comparison."""
    spans = [
        [s.name, s.track, s.start, s.end, sorted(s.tags.items())]
        for s in tracer.spans
    ]
    events = [
        [e.name, e.time, e.track, sorted(e.tags.items())]
        for e in tracer.events
    ]
    counters = {name: c.samples for name, c in sorted(tracer.counters.items())}
    return json.dumps([spans, events, counters], sort_keys=True, default=str)


class TestChaosSmoke:
    def test_mixed_fault_run_converges_exactly_once(self):
        result = run_chaos(seed=0)
        assert result.violations == []
        assert result.counts == result.expected
        assert result.ok

    def test_crash_restart_run_records_mttr(self):
        result = run_chaos(seed=1, kinds=(CRASH_RESTART,), fault_count=2)
        assert result.ok
        assert result.mttr_samples, "crash-restart must produce MTTR samples"
        assert all(mttr > 0 for mttr in result.mttr_samples)

    def test_partition_run_heals_without_state_loss(self):
        result = run_chaos(seed=2, kinds=(PARTITION,), fault_count=2)
        assert result.ok
        assert result.counts == result.expected

    def test_result_row_is_reportable(self):
        result = run_chaos(seed=3, fault_count=2)
        row = result.row()
        assert row[0] == 3
        assert row[-1] == "ok"


class TestChaosReplay:
    """Satellite (c): the same seed replays bit-identically."""

    def test_same_seed_replays_bit_identically(self):
        runs = []
        for _ in range(2):
            tracer = Tracer()
            result = run_chaos(seed=7, tracer=tracer)
            runs.append((result, canonical_trace(tracer)))
        (first, first_trace), (second, second_trace) = runs
        assert first.counts == second.counts
        assert first.mttr_samples == second.mttr_samples
        assert first.duration == second.duration
        assert first_trace == second_trace

    def test_different_seeds_give_different_schedules(self):
        a = run_chaos(seed=11, fault_count=3)
        b = run_chaos(seed=12, fault_count=3)
        schedule = lambda plan: [(e.time, e.kind, e.targets) for e in plan]
        assert schedule(a.plan) != schedule(b.plan)


@pytest.mark.chaos
class TestChaosSweep:
    """The wide seeded sweep: every run must satisfy every invariant."""

    def test_sweep_of_25_seeds_passes_all_invariants(self):
        results = run_chaos_sweep(range(25))
        failures = [r.row() for r in results if not r.ok]
        assert not failures, f"chaos sweep failures: {failures}"
        # The sweep must actually exercise every fault kind.
        exercised = {kind for r in results for kind in r.plan.kinds}
        assert exercised == set(ALL_KINDS)
        # Crash-restarts in the sweep yield recovery-time (MTTR) samples.
        samples = [m for r in results for m in r.mttr_samples]
        assert samples
        assert max(samples) < 10.0
