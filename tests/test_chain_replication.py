"""Unit tests for the chain replicator and replica stores."""

import pytest

from repro.common.errors import ProtocolError
from repro.sim import Simulator
from repro.cluster import Cluster
from repro.storage.kvs import LSMStore
from repro.core.replication import ChainReplicator, ReplicaStore


@pytest.fixture
def env():
    sim = Simulator()
    cluster = Cluster(sim)
    machines = cluster.add_machines(
        3,
        prefix="w",
        nic_bandwidth=100.0,
        disks=1,
        disk_read_bandwidth=100.0,
        disk_write_bandwidth=100.0,
        disk_capacity=10**9,
        network_latency=0.0,
    )
    replicator = ChainReplicator(sim, cluster, block_size=50, credit_window_bytes=200)
    return sim, cluster, machines, replicator


def make_checkpoint(name="s0", checkpoint_id=1, entries=(("k", "v", 100),)):
    store = LSMStore(name)
    for key, value, nbytes in entries:
        store.put(0, key, value, nbytes=nbytes)
    checkpoint, _flushed = store.checkpoint(checkpoint_id)
    return store, checkpoint


class TestReplicaStore:
    def test_ingest_accumulates_deltas(self):
        store = LSMStore("s0")
        replica = ReplicaStore.__new__(ReplicaStore)
        replica.machine = type("M", (), {"alive": False, "name": "fake"})()
        replica.holdings = {}
        store.put(0, "a", "x", nbytes=10)
        first, _ = store.checkpoint(1)
        store.put(0, "b", "y", nbytes=20)
        second, _ = store.checkpoint(2)
        replica.ingest(first)
        replica.ingest(second)
        holding = replica.holding_of("s0")
        assert holding.bytes_held == 30
        assert holding.is_complete

    def test_incomplete_holding_rejected(self):
        store = LSMStore("s0")
        replica = ReplicaStore.__new__(ReplicaStore)
        replica.machine = type("M", (), {"alive": False, "name": "fake"})()
        replica.holdings = {}
        store.put(0, "a", "x", nbytes=10)
        store.checkpoint(1)  # first delta never replicated
        store.put(0, "b", "y", nbytes=20)
        second, _ = store.checkpoint(2)
        replica.ingest(second)
        with pytest.raises(ProtocolError):
            replica.holding_of("s0")
        assert not replica.has_complete("s0")

    def test_ingest_garbage_collects_dropped_tables(self):
        store = LSMStore("s0", compaction_trigger=2)
        replica = ReplicaStore.__new__(ReplicaStore)
        replica.machine = type("M", (), {"alive": False, "name": "fake"})()
        replica.holdings = {}
        store.put(0, "a", "x", nbytes=10)
        first, _ = store.checkpoint(1)
        replica.ingest(first)
        store.put(0, "a", "y", nbytes=10)
        store.flush()
        store.compact()  # replaces both tables with one
        second, _ = store.checkpoint(2)
        replica.ingest(second)
        holding = replica.holding_of("s0")
        assert len(holding.tables) == 1


class TestChainReplication:
    def test_tail_receives_full_state(self, env):
        sim, _cluster, machines, replicator = env
        _store, checkpoint = make_checkpoint(entries=(("k", "v", 100),))
        process = replicator.replicate(machines[0], [machines[1], machines[2]], checkpoint)
        sim.run(until=process)
        for member in machines[1:]:
            assert replicator.store_on(member).has_complete("s0")

    def test_replication_time_reflects_bandwidth(self, env):
        sim, _cluster, machines, replicator = env
        _store, checkpoint = make_checkpoint(entries=(("k", "v", 400),))
        process = replicator.replicate(machines[0], [machines[1]], checkpoint)
        sim.run(until=process)
        # 400 B over a 100 B/s NIC, then pipelined 100 B/s disk writes:
        # strictly more than the pure transfer, less than transfer+write.
        assert 4.0 <= sim.now <= 9.0

    def test_pipelining_beats_store_and_forward(self, env):
        sim, _cluster, machines, replicator = env
        _store, checkpoint = make_checkpoint(entries=(("k", "v", 1000),))
        process = replicator.replicate(
            machines[0], [machines[1], machines[2]], checkpoint
        )
        sim.run(until=process)
        # Sequential hops would take 2 x 10 s of transfers plus 10 s of
        # writes; block pipelining overlaps them.
        assert sim.now < 28.0

    def test_empty_delta_replicates_instantly(self, env):
        sim, _cluster, machines, replicator = env
        store = LSMStore("s0")
        checkpoint, _ = store.checkpoint(1)
        process = replicator.replicate(machines[0], [machines[1]], checkpoint)
        sim.run(until=process)
        assert sim.now == 0.0
        assert replicator.store_on(machines[1]).has_complete("s0")

    def test_stats_accumulate(self, env):
        sim, _cluster, machines, replicator = env
        _store, checkpoint = make_checkpoint(entries=(("k", "v", 100),))
        process = replicator.replicate(
            machines[0], [machines[1], machines[2]], checkpoint
        )
        sim.run(until=process)
        assert replicator.stats.checkpoints_replicated == 1
        assert replicator.stats.bytes_replicated == 200  # 100 B x 2 members

    def test_bulk_copy_installs_full_replica(self, env):
        sim, _cluster, machines, replicator = env
        _store, checkpoint = make_checkpoint(entries=(("k", "v", 300),))
        first = replicator.replicate(machines[0], [machines[1]], checkpoint)
        sim.run(until=first)
        copy = replicator.bulk_copy(machines[1], machines[2], "s0")
        bytes_copied = sim.run(until=copy)
        assert bytes_copied == 300
        assert replicator.store_on(machines[2]).has_complete("s0")

    def test_replica_restores_identical_state(self, env):
        sim, _cluster, machines, replicator = env
        store, checkpoint = make_checkpoint(
            entries=(("a", "x", 10), ("b", "y", 20))
        )
        process = replicator.replicate(machines[0], [machines[1]], checkpoint)
        sim.run(until=process)
        holding = replicator.store_on(machines[1]).holding_of("s0")
        restored = LSMStore("restored")
        restored.restore(holding.live_tables())
        assert restored.get(0, "a") == "x"
        assert restored.get(0, "b") == "y"

    def test_chain_member_failure_fails_replication(self, env):
        sim, cluster, machines, replicator = env
        _store, checkpoint = make_checkpoint(entries=(("k", "v", 10_000),))
        process = replicator.replicate(machines[0], [machines[1]], checkpoint)
        process.defused = True

        def killer():
            yield sim.timeout(1.0)
            cluster.kill(machines[1])

        sim.process(killer())
        sim.run()
        assert not process.ok
