"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Simulator, Interrupt
from repro.sim.kernel import ProcessKilled


@pytest.fixture
def sim():
    return Simulator()


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_run_until_time_stops_early(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_sets_clock_even_without_events(self, sim):
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeout_carries_value(self, sim):
        timeout = sim.timeout(1.0, value="payload")
        sim.run()
        assert timeout.value == "payload"

    def test_same_instant_fifo_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in range(5):
            sim.process(proc(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcesses:
    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(2.0)
            return 42

        process = sim.process(proc())
        sim.run()
        assert process.value == 42

    def test_sequential_waits_accumulate_time(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return sim.now

        process = sim.process(proc())
        sim.run()
        assert process.value == 3.0

    def test_wait_on_another_process(self, sim):
        def child():
            yield sim.timeout(3.0)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return result, sim.now

        process = sim.process(parent())
        sim.run()
        assert process.value == ("child-result", 3.0)

    def test_wait_on_already_finished_process(self, sim):
        def child():
            yield sim.timeout(1.0)
            return "done"

        child_process = sim.process(child())

        def parent():
            yield sim.timeout(5.0)
            result = yield child_process
            return result

        parent_process = sim.process(parent())
        sim.run()
        assert parent_process.value == "done"

    def test_uncaught_exception_propagates_to_run(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        sim.process(proc())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_waiter_handles_child_failure(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError:
                return "handled"

        parent_process = sim.process(parent())
        sim.run()
        assert parent_process.value == "handled"

    def test_yielding_non_event_fails_process(self, sim):
        def proc():
            yield 42

        process = sim.process(proc())
        process.defused = True
        sim.run()
        assert not process.ok

    def test_run_until_event(self, sim):
        def proc():
            yield sim.timeout(4.0)
            return "x"

        process = sim.process(proc())
        sim.timeout(100.0)  # later noise event
        value = sim.run(until=process)
        assert value == "x"
        assert sim.now == 4.0


class TestInterrupts:
    def test_interrupt_wakes_process_early(self, sim):
        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        victim_process = sim.process(victim())

        def killer():
            yield sim.timeout(2.0)
            victim_process.interrupt("failure")

        sim.process(killer())
        sim.run()
        assert victim_process.value == ("interrupted", "failure", 2.0)

    def test_unhandled_interrupt_kills_process(self, sim):
        def victim():
            yield sim.timeout(100.0)

        victim_process = sim.process(victim())
        victim_process.defused = True

        def killer():
            yield sim.timeout(1.0)
            victim_process.interrupt("die")

        sim.process(killer())
        sim.run()
        assert not victim_process.ok
        with pytest.raises(ProcessKilled):
            victim_process.value

    def test_interrupting_dead_process_raises(self, sim):
        def proc():
            yield sim.timeout(1.0)

        process = sim.process(proc())
        sim.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_process_survives_interrupt_and_continues(self, sim):
        def victim():
            total = 0
            try:
                yield sim.timeout(50.0)
            except Interrupt:
                total += 1
            yield sim.timeout(1.0)
            return total, sim.now

        victim_process = sim.process(victim())

        def killer():
            yield sim.timeout(3.0)
            victim_process.interrupt()

        sim.process(killer())
        sim.run()
        assert victim_process.value == (1, 4.0)


class TestConditions:
    def test_all_of_collects_values(self, sim):
        def proc():
            results = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b")])
            return results, sim.now

        process = sim.process(proc())
        sim.run()
        assert process.value == (["a", "b"], 3.0)

    def test_all_of_empty_list(self, sim):
        def proc():
            results = yield sim.all_of([])
            return results

        process = sim.process(proc())
        sim.run()
        assert process.value == []

    def test_any_of_returns_first(self, sim):
        def proc():
            slow = sim.timeout(10, "slow")
            fast = sim.timeout(2, "fast")
            winner = yield sim.any_of([slow, fast])
            return winner.value, sim.now

        process = sim.process(proc())
        sim.run(until=process)
        assert process.value == ("fast", 2.0)

    def test_any_of_with_already_triggered_event(self, sim):
        event = sim.event()
        event.succeed("ready")

        def proc():
            winner = yield sim.any_of([event, sim.timeout(5)])
            return winner.value

        process = sim.process(proc())
        sim.run(until=process)
        assert process.value == "ready"

    def test_all_of_propagates_failure(self, sim):
        def failing():
            yield sim.timeout(1.0)
            raise RuntimeError("bad")

        def proc():
            try:
                yield sim.all_of([sim.process(failing()), sim.timeout(10)])
            except RuntimeError:
                return "caught"

        process = sim.process(proc())
        sim.run(until=process)
        assert process.value == "caught"


class TestEvents:
    def test_double_succeed_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_value_of_untriggered_event_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.value

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_manual_event_signaling_between_processes(self, sim):
        gate = sim.event()
        log = []

        def waiter():
            value = yield gate
            log.append(("woke", value, sim.now))

        def signaler():
            yield sim.timeout(6.0)
            gate.succeed("go")

        sim.process(waiter())
        sim.process(signaler())
        sim.run()
        assert log == [("woke", "go", 6.0)]


class TestAbsoluteTimeEvents:
    def test_at_fires_at_exact_absolute_time(self, sim):
        log = []
        due = 0.1 + 0.2  # deliberately not representable "nicely"
        sim.at(due).callbacks.append(lambda e: log.append(sim.now))
        sim.run()
        assert log == [due]  # exact: no now + delta round-trip

    def test_at_rejects_past_times(self, sim):
        def proc():
            yield sim.timeout(5.0)
            with pytest.raises(SimulationError):
                sim.at(1.0)

        sim.process(proc())
        sim.run()

    def test_at_carries_value(self, sim):
        log = []

        def proc():
            value = yield sim.at(2.0, value="tick")
            log.append((sim.now, value))

        sim.process(proc())
        sim.run()
        assert log == [(2.0, "tick")]


class TestEndOfInstantHooks:
    def test_hook_runs_after_last_event_of_instant(self, sim):
        log = []

        def proc(tag):
            yield sim.timeout(1.0)
            log.append(tag)
            sim.at_instant_end(lambda: log.append(f"eoi-{tag}"))

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        # Both same-instant events run before either hook fires.
        assert log == ["a", "b", "eoi-a", "eoi-b"]

    def test_hook_runs_before_clock_advances(self, sim):
        times = []

        def proc():
            yield sim.timeout(1.0)
            sim.at_instant_end(lambda: times.append(sim.now))
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert times == [1.0]

    def test_hook_scheduling_same_instant_work_runs_before_later_hooks(self, sim):
        log = []

        def hook():
            log.append(("hook", sim.now))
            event = sim.event()
            event.callbacks.append(lambda e: log.append(("event", sim.now)))
            event.succeed()
            sim.at_instant_end(lambda: log.append(("hook2", sim.now)))

        def proc():
            yield sim.timeout(3.0)
            sim.at_instant_end(hook)

        sim.process(proc())
        sim.run()
        assert log == [("hook", 3.0), ("event", 3.0), ("hook2", 3.0)]

    def test_hooks_run_when_queue_drains(self, sim):
        log = []
        sim.at_instant_end(lambda: log.append(sim.now))
        sim.run()
        assert log == [0.0]

    def test_hooks_run_under_run_until_event(self, sim):
        log = []
        gate = sim.event()

        def proc():
            yield sim.timeout(1.0)
            sim.at_instant_end(lambda: log.append("eoi"))
            yield sim.timeout(1.0)
            gate.succeed("done")

        sim.process(proc())
        assert sim.run(until=gate) == "done"
        assert log == ["eoi"]

    def test_events_processed_counter(self, sim):
        before = sim.events_processed

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert sim.events_processed > before
