"""Tests for the automatic decision-makers (load balance + failure)."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.rng import make_rng
from repro.core.api import Rhino, RhinoConfig
from repro.core.controller import FailureController, LoadBalanceController
from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic
from repro.engine.partitioning import key_group_of
from repro.engine.records import Record

from tests.engine_fixtures import EngineEnv, live_feeder

NUM_GROUPS = 32
KEYS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"]


def counter_graph():
    graph = StreamGraph("counter")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count", StatefulCounterLogic, 4, inputs=[("src", "hash")], stateful=True
    )
    graph.sink("out", inputs=[("count", "forward")])
    return graph


def setup(checkpoint_interval=1.0):
    env = EngineEnv(machines=4)
    env.topic("events", 2)
    config = JobConfig(
        num_key_groups=NUM_GROUPS,
        checkpoint_interval=checkpoint_interval,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    job = env.job(counter_graph(), config=config).start()
    rhino = Rhino(
        job,
        env.cluster,
        RhinoConfig(
            scheduling_delay=0.1, local_fetch_seconds=0.01, state_load_seconds=0.05
        ),
    ).attach()
    return env, job, rhino


def skewed_feed(env, count, hot_owner=0, interval=0.01):
    """Records overwhelmingly for keys owned by instance ``hot_owner``."""
    rng = make_rng(3, "controller-skew")
    width = NUM_GROUPS // 4
    lo, hi = hot_owner * width, (hot_owner + 1) * width
    hot_keys = [
        k
        for k in (f"hot-{i}" for i in range(2000))
        if lo <= key_group_of(k, NUM_GROUPS) < hi
    ][:10]

    def produce():
        for i in range(count):
            yield env.sim.timeout(interval)
            if rng.random() < 0.85:
                key = hot_keys[rng.randrange(len(hot_keys))]
            else:
                key = KEYS[rng.randrange(len(KEYS))]
            env.log.append("events", i % 2, Record(key, env.sim.now, value=i))

    return env.sim.process(produce())


class TestLoadBalanceController:
    def test_detects_skew_and_rebalances(self):
        env, job, rhino = setup()
        controller = LoadBalanceController(
            rhino, "count", interval=2.0, skew_threshold=2.0, cooldown=5.0
        )
        controller.start()
        skewed_feed(env, count=2000)
        env.run(until=25.0)
        assert controller.decisions
        _time, origin, _target, ratio = controller.decisions[0]
        assert ratio >= 2.0
        # Key groups actually moved away from the hot instance.
        assert job.assignments["count"].ranges_of(origin).span() < NUM_GROUPS // 4

    def test_balanced_load_triggers_nothing(self):
        env, job, rhino = setup()
        controller = LoadBalanceController(
            rhino, "count", interval=3.0, skew_threshold=3.0
        )
        controller.start()
        # Many keys hash close to uniformly across the four instances.
        many_keys = [f"key-{i}" for i in range(256)]
        live_feeder(env, "events", many_keys, count=500, interval=0.02)
        env.run(until=15.0)
        assert controller.decisions == []

    def test_cooldown_limits_decision_rate(self):
        env, job, rhino = setup()
        controller = LoadBalanceController(
            rhino, "count", interval=1.0, skew_threshold=1.5, cooldown=100.0
        )
        controller.start()
        skewed_feed(env, count=3000)
        env.run(until=30.0)
        assert len(controller.decisions) <= 1

    def test_invalid_threshold_rejected(self):
        env, job, rhino = setup()
        with pytest.raises(ProtocolError):
            LoadBalanceController(rhino, "count", skew_threshold=1.0)

    def test_stop_halts_controller(self):
        env, job, rhino = setup()
        controller = LoadBalanceController(rhino, "count", interval=1.0)
        controller.start()
        env.run(until=3.0)
        controller.stop()
        skewed_feed(env, count=1000)
        env.run(until=20.0)
        assert controller.decisions == []


class TestFailureController:
    def test_auto_recovery_on_machine_death(self):
        env, job, rhino = setup()
        controller = FailureController(rhino).attach()
        live_feeder(env, "events", KEYS, count=400, interval=0.02)
        env.run(until=3.0)
        victim = job.instance("count", 2).machine
        env.cluster.kill(victim)
        env.run(until=20.0)
        assert len(controller.recoveries) == 1
        _time, name, recovery = controller.recoveries[0]
        assert name == victim.name
        assert recovery.triggered and recovery.ok
        # Exactly-once counting survived the automatic recovery.
        finals = {}
        for key, _t, value, _w in job.sink_results("out"):
            finals[key] = max(finals.get(key, 0), value)
        expected = {}
        for i in range(400):
            key = KEYS[i % len(KEYS)]
            expected[key] = expected.get(key, 0) + 1
        assert finals == expected

    def test_attach_is_idempotent(self):
        env, job, rhino = setup()
        controller = FailureController(rhino)
        controller.attach()
        controller.attach()
        assert job.failure_listeners.count(controller._on_failure) == 1
