"""Unit tests for replica-group placement (bin packing)."""

import pytest

from repro.common.errors import ProtocolError
from repro.sim import Simulator
from repro.cluster import Cluster
from repro.core.replication_manager import ReplicationManager


@pytest.fixture
def workers():
    sim = Simulator()
    cluster = Cluster(sim)
    return cluster.add_machines(4, prefix="w", nic_bandwidth=1e9)


def make_instances(workers, count):
    return [(f"op[{i}]", workers[i % len(workers)]) for i in range(count)]


class TestPlacement:
    def test_every_instance_gets_a_group(self, workers):
        manager = ReplicationManager(workers, replication_factor=1)
        groups = manager.build_groups(make_instances(workers, 8))
        assert len(groups) == 8

    def test_chain_length_matches_replication_factor(self, workers):
        manager = ReplicationManager(workers, replication_factor=2)
        groups = manager.build_groups(make_instances(workers, 4))
        assert all(len(g.chain) == 2 for g in groups.values())

    def test_chain_excludes_primary_worker(self, workers):
        manager = ReplicationManager(workers, replication_factor=2)
        instances = make_instances(workers, 8)
        groups = manager.build_groups(instances)
        primary = dict(instances)
        for instance_id, group in groups.items():
            assert primary[instance_id] not in group.chain

    def test_chain_members_are_distinct(self, workers):
        manager = ReplicationManager(workers, replication_factor=3)
        groups = manager.build_groups(make_instances(workers, 6))
        for group in groups.values():
            assert len(set(group.chain)) == len(group.chain)

    def test_load_is_balanced_by_bytes(self, workers):
        manager = ReplicationManager(workers, replication_factor=1)
        instances = make_instances(workers, 8)
        sizes = {f"op[{i}]": 100 for i in range(8)}
        manager.build_groups(instances, sizes)
        summary = manager.load_summary()
        counts = sorted(summary.values())
        assert max(counts) - min(counts) <= 1

    def test_heavy_instances_spread_first(self, workers):
        manager = ReplicationManager(workers, replication_factor=1)
        instances = make_instances(workers, 4)
        sizes = {"op[0]": 1000, "op[1]": 1000, "op[2]": 10, "op[3]": 10}
        groups = manager.build_groups(instances, sizes)
        # The two heavy groups must land on different workers.
        assert groups["op[0]"].chain[0] is not groups["op[1]"].chain[0]

    def test_insufficient_workers_rejected(self, workers):
        manager = ReplicationManager(workers[:2], replication_factor=2)
        with pytest.raises(ProtocolError):
            manager.build_groups([("op[0]", workers[0])])

    def test_invalid_replication_factor(self, workers):
        with pytest.raises(ProtocolError):
            ReplicationManager(workers, replication_factor=0)


class TestRepair:
    def test_failed_worker_replaced_in_chains(self, workers):
        manager = ReplicationManager(workers, replication_factor=1)
        instances = make_instances(workers, 4)
        manager.build_groups(instances)
        victim = workers[0]
        affected = manager.replicas_on(victim)
        victim.fail()
        repairs = manager.repair_after_failure(victim, dict(instances))
        assert {instance_id for instance_id, _w in repairs} == set(affected)
        for group in manager.groups.values():
            assert victim not in group.chain

    def test_repair_avoids_primary(self, workers):
        manager = ReplicationManager(workers, replication_factor=1)
        instances = make_instances(workers, 4)
        manager.build_groups(instances)
        victim = workers[1]
        victim.fail()
        primaries = dict(instances)
        manager.repair_after_failure(victim, primaries)
        for instance_id, group in manager.groups.items():
            assert primaries[instance_id] not in group.chain

    def test_replicas_on_lookup(self, workers):
        manager = ReplicationManager(workers, replication_factor=2)
        manager.build_groups(make_instances(workers, 4))
        total = sum(len(manager.replicas_on(w)) for w in workers)
        assert total == 8  # 4 instances x 2 replicas
