"""Tests for the report renderers and the CLI experiment runner."""

import pytest

from repro.common.units import GB
from repro.experiments import report
from repro.experiments.scenarios.recovery import RecoveryResult


def make_result(sut, size_gb, sched=2.0, fetch=10.0, load=1.3, oom=False):
    result = RecoveryResult(sut, size_gb * GB)
    if oom:
        result.out_of_memory = True
        return result
    result.scheduling_seconds = sched
    result.fetching_seconds = fetch
    result.loading_seconds = load
    result.total_seconds = sched + fetch + load + 1.0
    return result


class TestPaperNumbers:
    def test_paper_total_sums_breakdown(self):
        assert report.paper_total(250, "flink") == pytest.approx(71.7)
        assert report.paper_total(1000, "rhino") == pytest.approx(4.7)

    def test_paper_total_megaphone_scalar(self):
        assert report.paper_total(250, "megaphone") == 46.3
        assert report.paper_total(1000, "megaphone") == "OOM"

    def test_paper_total_unknown(self):
        assert report.paper_total(123, "flink") is None

    def test_all_table1_cells_present(self):
        for size in (250, 500, 750, 1000):
            for sut in ("flink", "rhino", "rhinodfs", "megaphone"):
                assert report.PAPER_TABLE1[size][sut] is not None


class TestReportRendering:
    def test_figure1_report_contains_measured_and_paper(self):
        results = [make_result("rhino", 250), make_result("flink", 250)]
        text = report.figure1_report(results)
        assert "rhino" in text and "flink" in text
        assert "71.7" in text  # paper number alongside

    def test_figure1_report_marks_oom(self):
        text = report.figure1_report([make_result("megaphone", 750, oom=True)])
        assert "OOM" in text

    def test_table1_report_has_breakdown_columns(self):
        text = report.table1_report([make_result("rhino", 500)])
        assert "scheduling" in text and "fetching" in text and "loading" in text

    def test_timeline_report_with_claims(self):
        class FakeStats:
            def row(self):
                return [0.1, 0.2, 5.0, 30.0]

        class FakeResult:
            sut = "rhino"
            query = "nbq8"
            stats = FakeStats()

            def row(self):
                return [self.sut, self.query] + self.stats.row()

        text = report.timeline_report(
            [FakeResult()], "Panel", claims={"rhino": "flat"}
        )
        assert "Panel" in text
        assert "Paper claims" in text
        assert "flat" in text


class TestCli:
    def test_unknown_experiment_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_figure1_single_size(self, capsys):
        from repro.experiments.__main__ import main

        exit_code = main(["figure1", "--sizes", "100"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 1" in captured.out
        assert "rhino" in captured.out

    def test_ablations_command(self, capsys):
        from repro.experiments.__main__ import main

        exit_code = main(["ablations"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "virtual_nodes" in captured.out
        assert "delta_size" in captured.out
