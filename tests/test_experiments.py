"""Tests for the experiment harness: preloading, testbed, scenarios."""

import pytest

from repro.common.units import GB, MB
from repro.experiments.calibration import Calibration
from repro.experiments.harness import Testbed, SUTS
from repro.experiments.preload import preload_state, build_synthetic_table
from repro.experiments.timeline import LatencyStats
from repro.engine.metrics import LatencySeries


class TestTestbed:
    def test_testbed_builds_paper_cluster(self):
        testbed = Testbed()
        assert len(testbed.workers) == Calibration.workers
        assert all(m.alive for m in testbed.workers)

    def test_deploy_every_sut(self):
        for sut in SUTS:
            testbed = Testbed(rate_scale=0.01)
            handle = testbed.deploy(sut, "nbq8", checkpoint_interval=None)
            assert handle.job is not None
            assert handle.name == sut

    def test_unknown_sut_rejected(self):
        from repro.common.errors import ReproError

        testbed = Testbed()
        with pytest.raises(ReproError):
            testbed.deploy("storm", "nbq8")

    def test_unknown_query_rejected(self):
        from repro.common.errors import ReproError

        testbed = Testbed()
        with pytest.raises(ReproError):
            testbed.deploy("rhino", "nbq99")

    def test_workload_generates_records(self):
        testbed = Testbed(rate_scale=0.01)
        testbed.deploy("rhino", "nbq8", checkpoint_interval=None)
        generator = testbed.start_workload("nbq8")
        testbed.sim.run(until=10.0)
        assert generator.records_emitted > 0
        assert generator.bytes_emitted > 0

    def test_rate_scale_reduces_traffic(self):
        low = Testbed(rate_scale=0.01)
        low.deploy("rhino", "nbq8", checkpoint_interval=None)
        generator_low = low.start_workload("nbq8")
        low.sim.run(until=10.0)
        high = Testbed(rate_scale=0.05)
        high.deploy("rhino", "nbq8", checkpoint_interval=None)
        generator_high = high.start_workload("nbq8")
        high.sim.run(until=10.0)
        assert generator_high.bytes_emitted > 3 * generator_low.bytes_emitted


class TestPreload:
    def make_handle(self, sut="rhino"):
        testbed = Testbed(rate_scale=0.01)
        handle = testbed.deploy(sut, "nbq8", checkpoint_interval=None)
        testbed.start_workload("nbq8")
        testbed.sim.run(until=5.0)
        return testbed, handle

    def test_preload_installs_requested_bytes(self):
        _testbed, handle = self.make_handle()
        handle.preload(10 * GB)
        total = handle.total_state_bytes()
        assert total == pytest.approx(10 * GB, rel=0.01)

    def test_preload_registers_completed_checkpoint(self):
        _testbed, handle = self.make_handle()
        handle.preload(1 * GB)
        record = handle.job.coordinator.latest_completed()
        assert len(record.checkpoints) == len(handle.job.stateful_instances("join"))
        assert record.offsets

    def test_preload_populates_rhino_replicas(self):
        _testbed, handle = self.make_handle("rhino")
        handle.preload(8 * GB)
        for instance in handle.job.stateful_instances("join"):
            group = handle.rhino.replication_manager.group_of(instance.instance_id)
            for member in group.chain:
                store = handle.rhino.replicator.store_on(member)
                assert store.has_complete(instance.instance_id)

    def test_preload_registers_dfs_files_for_flink(self):
        testbed, handle = self.make_handle("flink")
        handle.preload(4 * GB)
        assert testbed.dfs.namenode.paths()
        used = sum(m.disk_used for m in testbed.workers)
        # live copy (4 GB) + two DFS replicas (8 GB)
        assert used == pytest.approx(12 * GB, rel=0.1)

    def test_preload_state_spreads_over_vnodes(self):
        _testbed, handle = self.make_handle()
        handle.preload(16 * GB)
        instance = handle.job.stateful_instances("join")[0]
        ranges = instance.state.owned_ranges()
        for lo, hi in ranges:
            assert instance.state.bytes_in_groups(lo, hi) > 0
            # each virtual node holds a share
            mid = (lo + hi) // 2
            assert instance.state.bytes_in_groups(lo, mid) > 0
            assert instance.state.bytes_in_groups(mid, hi) > 0

    def test_synthetic_table_has_requested_size(self):
        _testbed, handle = self.make_handle()
        instance = handle.job.stateful_instances("join")[0]
        table = build_synthetic_table(instance, 1 * GB)
        assert table.size_bytes == pytest.approx(1 * GB, rel=0.01)


class TestLatencyStats:
    def make_series(self, points):
        series = LatencySeries()
        for t, latency in points:
            series.record(t, latency)
        return series

    def test_before_after_split(self):
        series = self.make_series(
            [(1.0, 0.1), (2.0, 0.1), (11.0, 5.0), (12.0, 0.1)]
        )
        stats = LatencyStats(series, event_time=10.0)
        assert stats.before_mean == pytest.approx(0.1)
        assert stats.after_peak == 5.0

    def test_recovery_time_finds_last_bad_sample(self):
        series = self.make_series(
            [(t, 0.1) for t in range(10)]
            + [(10.5, 30.0), (12.0, 20.0), (15.0, 0.1), (20.0, 0.1)]
        )
        stats = LatencyStats(series, event_time=10.0)
        assert stats.recovery_seconds == pytest.approx(2.0)

    def test_flat_series_recovers_instantly(self):
        series = self.make_series([(t, 0.1) for t in range(20)])
        stats = LatencyStats(series, event_time=10.0)
        assert stats.recovery_seconds == 0.0

    def test_spike_factor(self):
        series = self.make_series([(1.0, 0.1), (11.0, 10.0)])
        stats = LatencyStats(series, event_time=10.0)
        assert stats.spike_factor == pytest.approx(100.0)


class TestRecoveryScenario:
    def test_rhino_recovery_scales_constant(self):
        from repro.experiments.scenarios.recovery import run_recovery

        small = run_recovery("rhino", 20 * GB)
        large = run_recovery("rhino", 80 * GB)
        assert small.fetching_seconds == pytest.approx(
            large.fetching_seconds, abs=0.1
        )

    def test_flink_recovery_scales_linearly(self):
        from repro.experiments.scenarios.recovery import run_recovery

        small = run_recovery("flink", 20 * GB)
        large = run_recovery("flink", 80 * GB)
        assert large.fetching_seconds > 2.5 * small.fetching_seconds

    def test_megaphone_oom_detection(self):
        from repro.experiments.scenarios.recovery import run_recovery

        ok = run_recovery("megaphone", 100 * GB)
        oom = run_recovery("megaphone", 700 * GB)
        assert not ok.out_of_memory
        assert oom.out_of_memory


class TestResourceScenario:
    def test_monitor_collects_samples(self):
        from repro.experiments.scenarios.resources import run_resource_utilization

        result = run_resource_utilization(
            "rhino",
            steady_seconds=60.0,
            after_seconds=30.0,
            rate_scale=0.05,
            preload_bytes=2 * GB,
            checkpoint_interval=20.0,
        )
        assert result.samples
        assert result.mean_network > 0
        assert result.transfer_rate is not None


class TestAblations:
    def test_virtual_node_granularity(self):
        from repro.experiments.scenarios.ablations import ablate_virtual_nodes

        results = ablate_virtual_nodes(counts=(1, 4), state_bytes=4 * GB)
        by_count = {r.setting: r.value for r in results}
        assert by_count[4] < by_count[1]

    def test_topology_ablation(self):
        from repro.experiments.scenarios.ablations import ablate_replication_topology

        results = ablate_replication_topology(delta_bytes=2 * GB, factor=3)
        by_topology = {r.setting: r.value for r in results}
        assert by_topology["chain"] < by_topology["star"]

    def test_incremental_ablation(self):
        from repro.experiments.scenarios.ablations import (
            ablate_incremental_checkpoints,
        )

        results = ablate_incremental_checkpoints()
        by_mode = {r.setting: r.value for r in results}
        assert by_mode["incremental"] < by_mode["full"]
