"""Unit tests for the checkpoint coordinator and DFS checkpoint storage."""

import pytest

from repro.common.errors import EngineError
from repro.engine.checkpointing import DFSCheckpointStorage
from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic

from tests.engine_fixtures import EngineEnv, live_feeder, make_dfs

KEYS = ["a", "b", "c", "d"]


def make_job(env, interval=1.0, storage=None):
    graph = StreamGraph("coord")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count", StatefulCounterLogic, 2, inputs=[("src", "hash")], stateful=True
    )
    graph.sink("out", inputs=[("count", "forward")])
    config = JobConfig(
        num_key_groups=16,
        checkpoint_interval=interval,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    return env.job(graph, config=config, storage=storage)


class TestCoordinatorLifecycle:
    def test_ids_are_monotone(self):
        env = EngineEnv()
        env.topic("events", 2)
        job = make_job(env).start()
        live_feeder(env, "events", KEYS, count=100, interval=0.02)
        env.run(until=6.0)
        ids = [r.checkpoint_id for r in job.coordinator.completed]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_no_overlapping_checkpoints(self):
        """A new checkpoint is not triggered while one is pending."""
        env = EngineEnv()
        env.topic("events", 2)
        job = make_job(env, interval=0.01).start()  # absurdly frequent
        live_feeder(env, "events", KEYS, count=100, interval=0.02)
        env.run(until=3.0)
        completed = [r.checkpoint_id for r in job.coordinator.completed]
        # ids are consecutive: none were triggered concurrently and lost
        assert completed == list(range(1, len(completed) + 1))

    def test_manual_trigger_works_without_interval(self):
        env = EngineEnv()
        env.topic("events", 2)
        job = make_job(env, interval=None).start()
        live_feeder(env, "events", KEYS, count=40, interval=0.02)
        env.run(until=1.5)
        checkpoint_id = job.coordinator.trigger_checkpoint()
        env.run(until=4.0)
        assert job.coordinator.completed[-1].checkpoint_id == checkpoint_id

    def test_latest_completed_without_any_raises(self):
        env = EngineEnv()
        env.topic("events", 2)
        job = make_job(env, interval=None).start()
        with pytest.raises(EngineError):
            job.coordinator.latest_completed()

    def test_listeners_fire_on_completion(self):
        env = EngineEnv()
        env.topic("events", 2)
        job = make_job(env).start()
        seen = []
        job.coordinator.checkpoint_listeners.append(
            lambda record: seen.append(record.checkpoint_id)
        )
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=4.0)
        assert seen == [r.checkpoint_id for r in job.coordinator.completed]

    def test_cutoffs_recorded_per_instance(self):
        env = EngineEnv()
        env.topic("events", 2)
        job = make_job(env).start()
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=4.0)
        record = job.coordinator.latest_completed()
        for instance_id, cutoff in record.cutoffs.items():
            assert cutoff <= env.sim.now


class TestDFSCheckpointStorage:
    def test_tables_uploaded_once(self):
        env = EngineEnv()
        env.topic("events", 2)
        dfs = make_dfs(env)
        storage = DFSCheckpointStorage(env.sim, dfs)
        job = make_job(env, storage=storage).start()
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=6.0)
        uploaded_first = storage.uploaded_bytes
        paths_first = set(dfs.namenode.paths())
        env.run(until=8.0)  # further checkpoints with no new data
        assert set(dfs.namenode.paths()) >= paths_first
        # No table is re-uploaded: bytes only grow with genuinely new data.
        assert storage.uploaded_bytes >= uploaded_first

    def test_fetch_returns_uploaded_bytes(self):
        env = EngineEnv()
        env.topic("events", 2)
        dfs = make_dfs(env)
        storage = DFSCheckpointStorage(env.sim, dfs)
        job = make_job(env, storage=storage).start()
        live_feeder(env, "events", KEYS, count=60, interval=0.02, nbytes=300)
        env.run(until=4.0)
        record = job.coordinator.latest_completed()
        checkpoint = next(iter(record.checkpoints.values()))
        fetch = storage.fetch(env.machines[-1], checkpoint)
        fetched = env.sim.run(until=fetch)
        assert fetched == sum(t.size_bytes for t in checkpoint.full_tables)

    def test_persist_timings_recorded(self):
        env = EngineEnv()
        env.topic("events", 2)
        dfs = make_dfs(env)
        storage = DFSCheckpointStorage(env.sim, dfs)
        job = make_job(env, storage=storage).start()
        live_feeder(env, "events", KEYS, count=60, interval=0.02, nbytes=500)
        env.run(until=4.0)
        assert storage.persist_timings
        for nbytes, seconds in storage.persist_timings:
            assert nbytes > 0 and seconds >= 0
