"""Unit and property tests for bloom filter, memtable, and SSTable."""

from hypothesis import given, strategies as st

from repro.storage.kvs import BloomFilter, MemTable, SSTable
from repro.storage.kvs.memtable import PUT, DELETE, MERGE


class TestBloomFilter:
    def test_added_keys_are_found(self):
        bloom = BloomFilter(100)
        for i in range(100):
            bloom.add(("g", i))
        assert all(("g", i) in bloom for i in range(100))

    def test_false_positive_rate_is_reasonable(self):
        bloom = BloomFilter(1000, false_positive_rate=0.01)
        for i in range(1000):
            bloom.add(i)
        false_positives = sum(1 for i in range(1000, 11000) if i in bloom)
        assert false_positives / 10000 < 0.05

    @given(st.lists(st.integers(), max_size=200))
    def test_no_false_negatives(self, keys):
        bloom = BloomFilter(max(len(keys), 1))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_rejects_bad_rate(self):
        import pytest

        with pytest.raises(ValueError):
            BloomFilter(10, false_positive_rate=1.5)


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(1, "k", "v", seq=1)
        assert table.get(1, "k").value == "v"

    def test_put_overwrites_and_adjusts_size(self):
        table = MemTable()
        table.put(1, "k", "v", seq=1, nbytes=100)
        table.put(1, "k", "w", seq=2, nbytes=40)
        assert table.size_bytes == 40
        assert len(table) == 1

    def test_delete_records_tombstone(self):
        table = MemTable()
        table.put(1, "k", "v", seq=1)
        table.delete(1, "k", seq=2)
        assert table.get(1, "k").kind == DELETE

    def test_append_onto_put_extends_value(self):
        table = MemTable()
        table.put(1, "k", ["a"], seq=1, nbytes=10)
        table.append(1, "k", "b", seq=2, nbytes=5)
        entry = table.get(1, "k")
        assert entry.kind == PUT
        assert entry.value == ["a", "b"]
        assert entry.nbytes == 15

    def test_append_without_base_records_merge(self):
        table = MemTable()
        table.append(1, "k", "x", seq=1)
        table.append(1, "k", "y", seq=2)
        entry = table.get(1, "k")
        assert entry.kind == MERGE
        assert entry.value == ["x", "y"]

    def test_sorted_items_order(self):
        table = MemTable()
        table.put(2, "b", 1, seq=1)
        table.put(1, "z", 2, seq=2)
        table.put(1, "a", 3, seq=3)
        keys = [composite for composite, _ in table.sorted_items()]
        assert keys == [(1, "a"), (1, "z"), (2, "b")]

    def test_clear(self):
        table = MemTable()
        table.put(1, "k", "v", seq=1)
        table.clear()
        assert len(table) == 0 and table.size_bytes == 0


def build_sstable(pairs):
    """pairs: list of ((group, key), value)."""
    memtable = MemTable()
    for seq, ((group, key), value) in enumerate(pairs, start=1):
        memtable.put(group, key, value, seq=seq, nbytes=10)
    return SSTable(memtable.sorted_items())


class TestSSTable:
    def test_point_lookup(self):
        table = build_sstable([((1, "a"), "x"), ((2, "b"), "y")])
        assert table.get(1, "a").value == "x"
        assert table.get(2, "b").value == "y"
        assert table.get(1, "b") is None

    def test_size_and_group_bytes(self):
        table = build_sstable([((1, "a"), "x"), ((1, "b"), "y"), ((5, "c"), "z")])
        assert table.size_bytes == 30
        assert table.group_bytes == {1: 20, 5: 10}

    def test_bytes_in_groups(self):
        table = build_sstable([((1, "a"), "x"), ((3, "b"), "y"), ((7, "c"), "z")])
        assert table.bytes_in_groups(0, 4) == 20
        assert table.bytes_in_groups(4, 100) == 10
        assert table.bytes_in_groups(8, 9) == 0

    def test_iter_groups_respects_range(self):
        table = build_sstable(
            [((1, "a"), 1), ((2, "b"), 2), ((3, "c"), 3), ((9, "d"), 4)]
        )
        found = [composite for composite, _ in table.iter_groups(2, 4)]
        assert found == [(2, "b"), (3, "c")]

    def test_min_max_key(self):
        table = build_sstable([((4, "m"), 1), ((1, "a"), 2)])
        assert table.min_key == (1, "a")
        assert table.max_key == (4, "m")

    def test_unique_ids(self):
        first = build_sstable([((1, "a"), 1)])
        second = build_sstable([((1, "a"), 1)])
        assert first.table_id != second.table_id

    @given(
        st.dictionaries(
            st.tuples(st.integers(0, 10), st.integers(0, 50)),
            st.integers(),
            max_size=50,
        )
    )
    def test_lookup_matches_dict(self, data):
        table = build_sstable(sorted(data.items()))
        for (group, key), value in data.items():
            assert table.get(group, key).value == value


class TestOrderKeyCache:
    def test_flush_order_unchanged_by_cache(self):
        """sorted_items() with cached order keys equals sorting with
        order_key() computed from scratch -- heterogeneous key types."""
        from repro.storage.kvs.memtable import order_key

        table = MemTable()
        keys = ["z", "a", (1, 2), (1, 1), 42, 7, "m", (0,), 0, "0"]
        for seq, key in enumerate(keys):
            table.put(seq % 3, key, f"v{seq}", seq=seq)
        cached = [composite for composite, _ in table.sorted_items()]
        scratch = sorted(table.entries, key=order_key)
        assert cached == scratch

    def test_order_cached_at_write_time(self):
        from repro.storage.kvs.memtable import order_key

        table = MemTable()
        table.put(3, ("composite", 9), "v", seq=1)
        entry = table.get(3, ("composite", 9))
        assert entry.order == order_key((3, ("composite", 9)))

    def test_overwrite_and_append_preserve_cached_order(self):
        from repro.storage.kvs.memtable import order_key

        table = MemTable()
        table.put(1, "k", "v", seq=1)
        table.put(1, "k", "w", seq=2)  # overwrite reuses cached order
        table.append(1, "k", "x", seq=3)  # in-place merge keeps it
        assert table.get(1, "k").order == order_key((1, "k"))

    def test_item_order_falls_back_for_bulk_entries(self):
        """Entries built outside a MemTable (bulk load) have no cache."""
        from repro.storage.kvs.memtable import Entry, item_order, order_key

        entry = Entry(PUT, "v", 1, 10)
        assert entry.order is None
        assert item_order(((2, "k"), entry)) == order_key((2, "k"))


class TestEstimateSizeFastPath:
    def test_modeled_sizes_unchanged_for_corpus(self):
        """The fast path returns exactly what the generic branch computes."""
        import sys

        from repro.storage.kvs.memtable import TOMBSTONE, estimate_size

        def reference(value):
            # The pre-optimization implementation, verbatim.
            if value is None or value is TOMBSTONE:
                return 8
            if isinstance(value, (bytes, bytearray, str)):
                return len(value) + 16
            if isinstance(value, (list, tuple)):
                return 16 + sum(reference(v) for v in value)
            if isinstance(value, dict):
                return 16 + sum(
                    reference(k) + reference(v) for k, v in value.items()
                )
            return max(16, sys.getsizeof(value) if hasattr(sys, "getsizeof") else 16)

        corpus = [
            None,
            TOMBSTONE,
            0,
            1,
            -1,
            2**29,
            -(2**29),
            2**30,  # beyond the one-digit fast path
            2**64,
            True,
            False,
            0.0,
            3.14,
            -2.5e300,
            "",
            "short",
            "x" * 1000,
            b"bytes",
            bytearray(b"ba"),
            [1, 2.0, "three"],
            (4, None),
            {"k": 1, 2: "v"},
            {"nested": {"a": [1, (2.0, "s")]}},
            object(),
        ]
        for value in corpus:
            assert estimate_size(value) == reference(value), repr(value)

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.integers(),
                st.floats(allow_nan=False),
                st.text(max_size=30),
                st.binary(max_size=30),
                st.booleans(),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=5),
                st.dictionaries(st.text(max_size=5), children, max_size=4),
            ),
            max_leaves=20,
        )
    )
    def test_modeled_sizes_unchanged_property(self, value):
        import sys

        from repro.storage.kvs.memtable import estimate_size

        def reference(v):
            if v is None:
                return 8
            if isinstance(v, (bytes, bytearray, str)):
                return len(v) + 16
            if isinstance(v, (list, tuple)):
                return 16 + sum(reference(x) for x in v)
            if isinstance(v, dict):
                return 16 + sum(reference(k) + reference(x) for k, x in v.items())
            return max(16, sys.getsizeof(v))

        assert estimate_size(value) == reference(value)
