"""Unit tests for the durable partitioned log."""

import pytest

from repro.common.errors import StorageError
from repro.sim import Simulator
from repro.sim.flows import FlowScheduler, Port
from repro.storage.log import DurableLog


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def log(sim):
    log = DurableLog(sim, scheduler=FlowScheduler(sim))
    log.create_topic("bids", 2)
    return log


class FakeRecord:
    def __init__(self, value, nbytes=0):
        self.value = value
        self.nbytes = nbytes


class TestPartitions:
    def test_append_returns_dense_offsets(self, log):
        partition = log.partition("bids", 0)
        assert partition.append("a") == 0
        assert partition.append("b") == 1
        assert partition.end_offset == 2

    def test_fetch_range(self, log):
        partition = log.partition("bids", 0)
        for value in "abcd":
            partition.append(value)
        assert partition.fetch(1, 2) == ["b", "c"]
        assert partition.fetch(4, 10) == []

    def test_duplicate_topic_rejected(self, log):
        with pytest.raises(StorageError):
            log.create_topic("bids", 1)

    def test_unknown_topic_rejected(self, log):
        with pytest.raises(StorageError):
            log.partition("nope", 0)

    def test_unknown_partition_rejected(self, log):
        with pytest.raises(StorageError):
            log.partition("bids", 9)


class TestCursor:
    def test_poll_blocks_until_append(self, sim, log):
        cursor = log.cursor("bids", 0)
        received = []

        def consumer():
            batch = yield from cursor.poll()
            received.append((batch, sim.now))

        sim.process(consumer())

        def producer():
            yield sim.timeout(5.0)
            log.append("bids", 0, "x")

        sim.process(producer())
        sim.run()
        assert received == [(["x"], 5.0)]

    def test_poll_respects_max_records(self, sim, log):
        for i in range(10):
            log.append("bids", 0, i)
        cursor = log.cursor("bids", 0)

        def consumer():
            batch = yield from cursor.poll(max_records=3)
            return batch

        process = sim.process(consumer())
        sim.run(until=process)
        assert process.value == [0, 1, 2]
        assert cursor.offset == 3

    def test_seek_rewinds_for_replay(self, sim, log):
        for i in range(5):
            log.append("bids", 0, i)
        cursor = log.cursor("bids", 0)

        def consume_all():
            batch = yield from cursor.poll(max_records=10)
            return batch

        process = sim.process(consume_all())
        sim.run(until=process)
        cursor.seek(2)
        process = sim.process(consume_all())
        sim.run(until=process)
        assert process.value == [2, 3, 4]

    def test_seek_beyond_end_rejected(self, log):
        cursor = log.cursor("bids", 0)
        with pytest.raises(StorageError):
            cursor.seek(1)

    def test_lag(self, sim, log):
        for i in range(4):
            log.append("bids", 0, i)
        cursor = log.cursor("bids", 0)
        assert cursor.lag == 4
        cursor.try_poll(max_records=3)
        assert cursor.lag == 1

    def test_try_poll_nonblocking(self, log):
        cursor = log.cursor("bids", 0)
        assert cursor.try_poll() == []

    def test_poll_charges_consumer_nic(self, sim, log):
        class Machine:
            def __init__(self):
                self.nic_in = Port("consumer.nic.in", 100.0)

        machine = Machine()
        log.append("bids", 0, FakeRecord("x", nbytes=200))
        cursor = log.cursor("bids", 0, consumer_machine=machine)

        def consumer():
            batch = yield from cursor.poll()
            return batch

        process = sim.process(consumer())
        sim.run(until=process)
        assert sim.now == pytest.approx(2.0)  # 200 B over 100 B/s

    def test_independent_partitions(self, sim, log):
        log.append("bids", 0, "p0")
        log.append("bids", 1, "p1")
        cursor0 = log.cursor("bids", 0)
        cursor1 = log.cursor("bids", 1)
        assert cursor0.try_poll() == ["p0"]
        assert cursor1.try_poll() == ["p1"]

    def test_end_offsets(self, log):
        log.append("bids", 0, "a")
        log.append("bids", 0, "b")
        log.append("bids", 1, "c")
        assert log.end_offsets("bids") == [2, 1]
