"""Tests for the public API surface: reconfigure, config validation,
attach/detach idempotency."""

import pytest

from repro.common.errors import ProtocolError
from repro.core.api import Reconfiguration, Rhino, RhinoConfig
from repro.core.handover import HandoverMarker
from repro.engine.graph import StreamGraph
from repro.engine.job import JobConfig
from repro.engine.operators import StatefulCounterLogic
from repro.sim.kernel import Process

from tests.engine_fixtures import EngineEnv, live_feeder

KEYS = ["alpha", "bravo", "charlie", "delta"]


def counter_graph():
    graph = StreamGraph("counter")
    graph.source("src", topic="events", parallelism=2)
    graph.operator(
        "count",
        StatefulCounterLogic,
        4,
        inputs=[("src", "hash")],
        stateful=True,
    )
    graph.sink("out", inputs=[("count", "forward")])
    return graph


def make_env(machines=4):
    env = EngineEnv(machines=machines)
    env.topic("events", 2)
    return env


def start_job(env):
    config = JobConfig(
        num_key_groups=32,
        virtual_node_count=4,
        checkpoint_interval=1.0,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )
    return env.job(counter_graph(), config=config).start()


def make_rhino(env, job, **overrides):
    defaults = dict(
        replication_factor=1,
        scheduling_delay=0.1,
        local_fetch_seconds=0.01,
        state_load_seconds=0.05,
    )
    defaults.update(overrides)
    return Rhino(job, env.cluster, RhinoConfig(**defaults))


class TestRhinoConfig:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            RhinoConfig(2)  # noqa: the point is rejecting positionals

    def test_defaults_are_valid(self):
        config = RhinoConfig()
        assert config.replication_factor == 1
        assert config.use_dfs is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replication_factor": -1},
            {"block_size": 0},
            {"block_size": -5},
            {"credit_window_bytes": 0},
            {"use_dfs": True},  # no dfs_storage
            {"scheduling_delay": -0.1},
            {"local_fetch_seconds": -1},
            {"state_load_seconds": -1},
            {"checkpoint_drain_timeout": -1},
            {"handover_timeout": 0},
        ],
    )
    def test_invalid_values_fail_at_construction(self, kwargs):
        with pytest.raises(ProtocolError):
            RhinoConfig(**kwargs)

    def test_use_dfs_with_storage_is_valid(self):
        config = RhinoConfig(use_dfs=True, dfs_storage=object())
        assert config.use_dfs is True

    def test_paper_defaults_match_table1_constants(self):
        config = RhinoConfig.paper_defaults()
        assert config.local_fetch_seconds == 0.2
        assert config.state_load_seconds == 1.3
        assert RhinoConfig.paper_defaults(replication_factor=2).replication_factor == 2

    def test_from_dict_round_trips(self):
        config = RhinoConfig(replication_factor=2, block_size=1024)
        clone = RhinoConfig.from_dict(config.to_dict())
        assert clone.to_dict() == config.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ProtocolError, match="replication_factr"):
            RhinoConfig.from_dict({"replication_factr": 2})

    def test_from_dict_validates(self):
        with pytest.raises(ProtocolError):
            RhinoConfig.from_dict({"replication_factor": -3})


class TestReconfigure:
    def test_unknown_kind(self):
        env = make_env()
        rhino = make_rhino(env, start_job(env)).attach()
        with pytest.raises(ProtocolError, match="unknown reconfiguration kind"):
            rhino.reconfigure("explode")

    def test_missing_required_argument(self):
        env = make_env()
        rhino = make_rhino(env, start_job(env)).attach()
        with pytest.raises(ProtocolError, match="requires machine="):
            rhino.reconfigure("failure")

    def test_unexpected_argument(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        with pytest.raises(ProtocolError, match="unexpected arguments"):
            rhino.reconfigure("drain", machine=job.machines[0], bogus=1)

    def test_empty_plan_list(self):
        env = make_env()
        rhino = make_rhino(env, start_job(env)).attach()
        with pytest.raises(ProtocolError, match="non-empty list"):
            rhino.reconfigure([])

    def test_rebalance_returns_typed_handle(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        live_feeder(env, "events", KEYS, count=100, interval=0.02)
        env.run(until=3.0)
        handle = rhino.reconfigure("rebalance", op_name="count", moves=[(0, 1)])
        assert isinstance(handle, Reconfiguration)
        assert handle.kind == "rebalance"
        assert isinstance(handle.process, Process)
        assert not handle.done
        assert handle.report is None
        report = env.sim.run(until=handle.process)
        assert handle.done and handle.succeeded
        assert handle.report is report
        assert handle.reports == [report]

    def test_failure_recovery_via_reconfigure(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        live_feeder(env, "events", KEYS, count=100, interval=0.02)
        env.run(until=3.0)
        victim = job.instance("count", 2).machine
        env.cluster.kill(victim)
        handle = rhino.reconfigure("failure", machine=victim)
        report = env.sim.run(until=handle.process)
        assert handle.succeeded
        assert report is not None
        assert handle.report is report

    def test_legacy_verbs_return_bare_processes(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        live_feeder(env, "events", KEYS, count=100, interval=0.02)
        env.run(until=3.0)
        process = rhino.rebalance("count", [(0, 1)])
        assert isinstance(process, Process)
        report = env.sim.run(until=process)
        assert report.total_seconds is not None
        process = rhino.rescale("count", add_instances=2)
        assert isinstance(process, Process)
        env.sim.run(until=process)
        assert job.graph.operators["count"].parallelism == 6

    def test_handles_track_only_their_own_reports(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        live_feeder(env, "events", KEYS, count=150, interval=0.02)
        env.run(until=3.0)
        first = rhino.reconfigure("rebalance", op_name="count", moves=[(0, 1)])
        env.sim.run(until=first.process)
        second = rhino.reconfigure("rebalance", op_name="count", moves=[(2, 3)])
        env.sim.run(until=second.process)
        assert len(rhino.reports) == 2
        assert first.reports == [rhino.reports[0]]
        assert second.reports == [rhino.reports[1]]


class TestAttachDetach:
    def test_attach_is_idempotent(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job)
        assert not rhino.attached
        rhino.attach()
        assert rhino.attached
        listeners = list(job.coordinator.instance_checkpoint_listeners)
        failures = list(job.failure_listeners)
        rhino.attach()
        assert job.coordinator.instance_checkpoint_listeners == listeners
        assert job.failure_listeners == failures

    def test_detach_removes_what_attach_registered(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        assert HandoverMarker in job.marker_handlers
        rhino.detach()
        assert not rhino.attached
        assert HandoverMarker not in job.marker_handlers
        assert (
            rhino._on_instance_checkpoint
            not in job.coordinator.instance_checkpoint_listeners
        )
        assert rhino._on_machine_failure not in job.failure_listeners

    def test_detach_is_idempotent(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        rhino.detach()
        rhino.detach()  # no error, no state change
        assert not rhino.attached

    def test_detach_before_attach_is_a_noop(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job)
        assert rhino.detach() is rhino

    def test_reattach_after_detach(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        rhino.detach()
        rhino.attach()
        assert rhino.attached
        assert job.marker_handlers[HandoverMarker] == rhino.handover_manager.on_marker

    def test_second_rhino_does_not_leak_old_listeners(self):
        env = make_env()
        job = start_job(env)
        old = make_rhino(env, job).attach()
        old.detach()
        new = make_rhino(env, job).attach()
        listeners = job.coordinator.instance_checkpoint_listeners
        assert old._on_instance_checkpoint not in listeners
        assert new._on_instance_checkpoint in listeners
        assert job.marker_handlers[HandoverMarker] == new.handover_manager.on_marker
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=5.0)
        # Only the new library replicates; the detached one stays silent.
        assert new.replicator.stats.checkpoints_replicated > 0
        assert old.replicator.stats.checkpoints_replicated == 0

    def test_stale_listener_is_inert_even_if_left_behind(self):
        env = make_env()
        job = start_job(env)
        rhino = make_rhino(env, job).attach()
        rhino._attached = False  # simulate a leaked registration
        live_feeder(env, "events", KEYS, count=60, interval=0.02)
        env.run(until=5.0)
        assert rhino.replicator.stats.checkpoints_replicated == 0
