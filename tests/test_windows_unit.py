"""Unit tests for window operator logic against a fake context (no engine)."""

import pytest

from repro.common.ranges import RangeSet
from repro.engine.operators import OperatorLogic
from repro.engine.records import Record, Watermark
from repro.engine.windows import (
    SessionWindowJoin,
    SlidingWindowAggregate,
    TumblingWindowJoin,
)
from repro.storage.kvs import LSMStore


class FakeState:
    """KeyedStateBackend lookalike over a plain LSM store."""

    def __init__(self):
        self.store = LSMStore("fake")

    def get(self, group, key):
        return self.store.get(group, key)

    def put(self, group, key, value, nbytes=None):
        self.store.put(group, key, value, nbytes=nbytes)

    def append(self, group, key, element, nbytes=None):
        self.store.append(group, key, element, nbytes=nbytes)

    def delete(self, group, key):
        self.store.delete(group, key)


class FakeContext:
    def __init__(self, num_groups=16):
        self.state = FakeState()
        self.num_key_groups = num_groups

    def key_group(self, key):
        from repro.engine.partitioning import key_group_of

        return key_group_of(key, self.num_key_groups)


def open_logic(logic):
    logic.ctx = FakeContext()
    return logic


class TestSlidingWindowUnit:
    def test_single_pane_counts(self):
        logic = open_logic(SlidingWindowAggregate(size=10.0, slide=5.0))
        for i in range(4):
            list(logic.process(Record("k", 1.0 + i)))
        out = list(logic.on_watermark(Watermark(10.0)))
        # The pane [0,5) is covered by the windows ending at 5 and at 10.
        assert [(r.timestamp, r.value) for r in out] == [(5.0, 4), (10.0, 4)]

    def test_sliding_windows_overlap(self):
        logic = open_logic(SlidingWindowAggregate(size=10.0, slide=5.0))
        list(logic.process(Record("k", 2.0)))  # pane [0,5)
        list(logic.process(Record("k", 7.0)))  # pane [5,10)
        out = {r.timestamp: r.value for r in logic.on_watermark(Watermark(20.0))}
        # window ending 5 covers pane 0; ending 10 covers panes 0+5;
        # ending 15 covers panes 5,10 -> value 1.
        assert out[5.0] == 1
        assert out[10.0] == 2
        assert out[15.0] == 1

    def test_weights_accumulate(self):
        logic = open_logic(SlidingWindowAggregate(size=10.0, slide=10.0))
        list(logic.process(Record("k", 1.0, weight=500)))
        out = list(logic.on_watermark(Watermark(10.0)))
        assert out[0].value == 500

    def test_expired_panes_deleted(self):
        logic = open_logic(SlidingWindowAggregate(size=10.0, slide=5.0))
        list(logic.process(Record("k", 1.0)))
        list(logic.on_watermark(Watermark(50.0)))
        group = logic.ctx.key_group("k")
        assert logic.ctx.state.get(group, ("k", "pane", 0.0)) is None
        assert "k" not in logic.pane_keys

    def test_no_duplicate_emissions_across_watermarks(self):
        logic = open_logic(SlidingWindowAggregate(size=10.0, slide=5.0))
        list(logic.process(Record("k", 2.0)))
        first = list(logic.on_watermark(Watermark(10.0)))
        second = list(logic.on_watermark(Watermark(10.0)))
        list(logic.process(Record("k", 12.0)))
        third = list(logic.on_watermark(Watermark(20.0)))
        emitted = [(r.timestamp, r.value) for r in first + second + third]
        assert len(emitted) == len(set(emitted))

    def test_size_must_be_multiple_of_slide(self):
        with pytest.raises(ValueError):
            SlidingWindowAggregate(size=10.0, slide=3.0)

    def test_rebuild_restores_pane_index(self):
        logic = open_logic(SlidingWindowAggregate(size=10.0, slide=5.0))
        list(logic.process(Record("k", 2.0)))
        saved_state = logic.ctx.state
        fresh = SlidingWindowAggregate(size=10.0, slide=5.0)
        fresh.ctx = logic.ctx
        fresh.rebuild([(0, 16)])
        assert fresh.pane_keys == {"k": {0.0}}


class TestTumblingJoinUnit:
    def test_join_counts_pairs(self):
        logic = open_logic(TumblingWindowJoin(size=10.0))
        for i in range(3):
            list(logic.process(Record("k", 1.0 + i), side=0))
        for i in range(2):
            list(logic.process(Record("k", 1.0 + i), side=1))
        out = list(logic.on_watermark(Watermark(10.0)))
        assert len(out) == 1
        assert out[0].weight == 6  # 3 x 2

    def test_unmatched_key_emits_nothing(self):
        logic = open_logic(TumblingWindowJoin(size=10.0))
        list(logic.process(Record("left-only", 1.0), side=0))
        assert list(logic.on_watermark(Watermark(20.0))) == []

    def test_windows_fire_in_order(self):
        logic = open_logic(TumblingWindowJoin(size=10.0))
        for window in (0.0, 10.0, 20.0):
            list(logic.process(Record("k", window + 1.0), side=0))
            list(logic.process(Record("k", window + 2.0), side=1))
        out = list(logic.on_watermark(Watermark(30.0)))
        assert [r.timestamp for r in out] == [10.0, 20.0, 30.0]

    def test_watermark_does_not_fire_open_window(self):
        logic = open_logic(TumblingWindowJoin(size=10.0))
        list(logic.process(Record("k", 1.0), side=0))
        list(logic.process(Record("k", 1.0), side=1))
        assert list(logic.on_watermark(Watermark(9.0))) == []
        assert 0.0 in logic.windows

    def test_state_deleted_after_fire(self):
        logic = open_logic(TumblingWindowJoin(size=10.0))
        list(logic.process(Record("k", 1.0), side=0))
        list(logic.process(Record("k", 1.0), side=1))
        list(logic.on_watermark(Watermark(10.0)))
        group = logic.ctx.key_group("k")
        assert logic.ctx.state.get(group, ("k", 0, 0.0)) is None
        assert logic.ctx.state.get(group, ("k", 1, 0.0)) is None

    def test_rebuild_restores_window_index(self):
        logic = open_logic(TumblingWindowJoin(size=10.0))
        list(logic.process(Record("k", 3.0), side=0))
        fresh = TumblingWindowJoin(size=10.0)
        fresh.ctx = logic.ctx
        fresh.rebuild([(0, 16)])
        assert fresh.windows == {0.0: {"k"}}


class TestSessionJoinUnit:
    def test_session_closes_after_gap(self):
        logic = open_logic(SessionWindowJoin(gap=5.0))
        list(logic.process(Record("k", 1.0), side=0))
        list(logic.process(Record("k", 2.0), side=1))
        assert list(logic.on_watermark(Watermark(6.0))) == []  # gap not passed
        out = list(logic.on_watermark(Watermark(7.1)))
        assert len(out) == 1
        assert out[0].weight == 1

    def test_activity_extends_session(self):
        logic = open_logic(SessionWindowJoin(gap=5.0))
        list(logic.process(Record("k", 1.0), side=0))
        list(logic.process(Record("k", 4.0), side=1))
        list(logic.process(Record("k", 8.0), side=0))  # extends
        assert list(logic.on_watermark(Watermark(9.0))) == []
        out = list(logic.on_watermark(Watermark(13.5)))
        assert len(out) == 1
        assert out[0].weight == 2  # 2 left x 1 right

    def test_silence_starts_new_session(self):
        logic = open_logic(SessionWindowJoin(gap=5.0))
        list(logic.process(Record("k", 1.0), side=0))
        list(logic.process(Record("k", 1.0), side=1))
        list(logic.on_watermark(Watermark(10.0)))  # closes session 1
        list(logic.process(Record("k", 20.0), side=0))
        list(logic.process(Record("k", 20.0), side=1))
        out = list(logic.on_watermark(Watermark(30.0)))
        assert len(out) == 1

    def test_state_deleted_on_close(self):
        logic = open_logic(SessionWindowJoin(gap=5.0))
        list(logic.process(Record("k", 1.0), side=0))
        list(logic.on_watermark(Watermark(10.0)))
        group = logic.ctx.key_group("k")
        assert logic.ctx.state.get(group, ("k", 0, 1.0)) is None
        assert "k" not in logic.sessions
