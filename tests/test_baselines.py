"""End-to-end tests of the Flink, RhinoDFS, and Megaphone baselines."""

import pytest

from repro.common.errors import ProtocolError
from repro.engine.graph import StreamGraph
from repro.engine.job import Job, JobConfig
from repro.engine.operators import StatefulCounterLogic
from repro.baselines import FlinkRuntime, FlinkConfig, Megaphone, MegaphoneConfig
from repro.baselines.rhinodfs import make_rhinodfs
from repro.engine.checkpointing import DFSCheckpointStorage

from tests.engine_fixtures import EngineEnv, live_feeder, make_dfs

KEYS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"]


def counter_graph_factory(source_parallelism=2, counter_parallelism=4):
    def factory():
        graph = StreamGraph("counter")
        graph.source("src", topic="events", parallelism=source_parallelism)
        graph.operator(
            "count",
            StatefulCounterLogic,
            counter_parallelism,
            inputs=[("src", "hash")],
            stateful=True,
            measure_latency=True,
        )
        graph.sink("out", inputs=[("count", "forward")])
        return graph

    return factory


def job_config(checkpoint_interval=1.0):
    return JobConfig(
        num_key_groups=32,
        checkpoint_interval=checkpoint_interval,
        exchange_interval=0.05,
        watermark_interval=0.1,
        source_idle_timeout=0.05,
    )


def expected_counts(total_records):
    expected = {}
    for i in range(total_records):
        key = KEYS[i % len(KEYS)]
        expected[key] = expected.get(key, 0) + 1
    return expected


def final_counts(results):
    finals = {}
    for key, _t, value, _w in results:
        finals[key] = max(finals.get(key, 0), value)
    return finals


class TestFlinkBaseline:
    def make_runtime(self, env, dfs):
        return FlinkRuntime(
            env.sim,
            env.cluster,
            counter_graph_factory(),
            env.log,
            env.machines,
            job_config(),
            dfs,
            config=FlinkConfig(restart_delay=0.5, state_load_seconds=0.1),
        ).start()

    def test_checkpoints_upload_to_dfs(self):
        env = EngineEnv(machines=4)
        env.topic("events", 2)
        dfs = make_dfs(env)
        runtime = self.make_runtime(env, dfs)
        live_feeder(env, "events", KEYS, count=60, interval=0.02, nbytes=100)
        env.run(until=4.0)
        assert runtime.storage.uploaded_bytes > 0
        assert dfs.namenode.paths()

    def test_failure_recovery_preserves_counts(self):
        env = EngineEnv(machines=4)
        env.topic("events", 2)
        dfs = make_dfs(env)
        runtime = self.make_runtime(env, dfs)
        live_feeder(env, "events", KEYS, count=240, interval=0.02)
        victim = runtime.job.instance("count", 2).machine

        def chaos():
            yield env.sim.timeout(3.0)
            env.cluster.kill(victim)
            yield runtime.recover_from_failure(victim)

        chaos_process = env.sim.process(chaos())
        env.run(until=25.0)
        assert chaos_process.ok
        assert final_counts(runtime.sink_results("out")) == expected_counts(240)

    def test_recovery_report_breakdown(self):
        env = EngineEnv(machines=4)
        env.topic("events", 2)
        dfs = make_dfs(env)
        runtime = self.make_runtime(env, dfs)
        live_feeder(env, "events", KEYS, count=120, interval=0.02, nbytes=500)
        victim = runtime.job.instance("count", 2).machine

        def chaos():
            yield env.sim.timeout(3.0)
            env.cluster.kill(victim)
            yield runtime.recover_from_failure(victim)

        env.sim.process(chaos())
        env.run(until=25.0)
        report = runtime.reports[-1]
        assert report.reason == "failure"
        assert report.scheduling_seconds >= 0.5
        assert report.fetched_bytes > 0
        assert report.total_seconds > 0.5

    def test_new_job_avoids_dead_machine(self):
        env = EngineEnv(machines=4)
        env.topic("events", 2)
        dfs = make_dfs(env)
        runtime = self.make_runtime(env, dfs)
        live_feeder(env, "events", KEYS, count=120, interval=0.02)
        victim = runtime.job.instance("count", 2).machine

        def chaos():
            yield env.sim.timeout(3.0)
            env.cluster.kill(victim)
            yield runtime.recover_from_failure(victim)

        env.sim.process(chaos())
        env.run(until=25.0)
        for instance in runtime.job.all_instances():
            assert instance.machine is not victim

    def test_rescale_preserves_counts(self):
        env = EngineEnv(machines=4)
        env.topic("events", 2)
        dfs = make_dfs(env)
        runtime = self.make_runtime(env, dfs)
        live_feeder(env, "events", KEYS, count=240, interval=0.02)

        def trigger():
            yield env.sim.timeout(3.0)
            yield runtime.rescale("count", 6)

        trigger_process = env.sim.process(trigger())
        env.run(until=25.0)
        assert trigger_process.ok
        assert runtime.job.graph.operators["count"].parallelism == 6
        assert final_counts(runtime.sink_results("out")) == expected_counts(240)

    def test_restart_without_checkpoint_rejected(self):
        env = EngineEnv(machines=4)
        env.topic("events", 2)
        dfs = make_dfs(env)
        runtime = FlinkRuntime(
            env.sim,
            env.cluster,
            counter_graph_factory(),
            env.log,
            env.machines,
            job_config(checkpoint_interval=None),
            dfs,
        ).start()
        recovery = runtime.recover_from_failure(env.machines[2])
        recovery.defused = True
        env.run(until=2.0)
        assert not recovery.ok


class TestRhinoDFS:
    def test_failure_recovery_fetches_from_dfs(self):
        env = EngineEnv(machines=4)
        env.topic("events", 2)
        dfs = make_dfs(env)
        storage = DFSCheckpointStorage(env.sim, dfs, prefix="/rhinodfs")
        graph = counter_graph_factory()()
        job = Job(
            env.sim,
            env.cluster,
            graph,
            env.log,
            env.machines,
            config=job_config(),
            checkpoint_storage=storage,
        ).start()
        rhino = make_rhinodfs(
            job,
            env.cluster,
            dfs,
            scheduling_delay=0.1,
            state_load_seconds=0.05,
        )
        live_feeder(env, "events", KEYS, count=240, interval=0.02, nbytes=200)
        victim = job.instance("count", 2).machine

        def chaos():
            yield env.sim.timeout(3.0)
            env.cluster.kill(victim)
            yield rhino.recover_from_failure(victim)

        chaos_process = env.sim.process(chaos())
        env.run(until=25.0)
        assert chaos_process.ok
        report = rhino.reports[-1]
        # RhinoDFS pulls state through the DFS: real bytes move.
        assert report.migrated_bytes > 0
        assert final_counts(job.sink_results("out")) == expected_counts(240)

    def test_make_rhinodfs_installs_dfs_storage(self):
        env = EngineEnv(machines=4)
        env.topic("events", 2)
        dfs = make_dfs(env)
        job = env.job(counter_graph_factory()())
        rhino = make_rhinodfs(job, env.cluster, dfs)
        assert rhino.config.use_dfs
        assert isinstance(job.checkpoint_storage, DFSCheckpointStorage)
        assert job.coordinator.storage is job.checkpoint_storage


class TestMegaphone:
    def make_setup(self, memory=4 * 1024**3, machines=4):
        env = EngineEnv(machines=machines, memory=memory)
        env.topic("events", 2)
        job = env.job(counter_graph_factory()(), config=job_config(None))
        job.start()
        megaphone = Megaphone(job, env.cluster).attach(
            monitor_interval=0.2
        )
        return env, job, megaphone

    def test_memory_accounting_tracks_state(self):
        env, job, megaphone = self.make_setup()
        live_feeder(env, "events", KEYS, count=80, interval=0.02, nbytes=1000)
        env.run(until=4.0)
        megaphone.account_memory()
        charged = sum(m.memory_used for m in env.machines)
        assert charged == job.total_state_bytes("count")

    def test_out_of_memory_kills_job(self):
        env, job, megaphone = self.make_setup(memory=4096)
        many_keys = [f"key-{i}" for i in range(64)]
        live_feeder(env, "events", many_keys, count=200, interval=0.01, nbytes=1000)
        env.run(until=6.0)
        assert megaphone.failed is not None
        assert not any(i.running for i in job.operator_instances("count"))

    def test_migration_after_oom_rejected(self):
        env, job, megaphone = self.make_setup(memory=4096)
        many_keys = [f"key-{i}" for i in range(64)]
        live_feeder(env, "events", many_keys, count=200, interval=0.01, nbytes=1000)
        env.run(until=6.0)
        migrate = megaphone.migrate("count", [(0, 1, 0.5)])
        migrate.defused = True
        env.run(until=8.0)
        assert not migrate.ok

    def test_fluid_migration_preserves_counts(self):
        env, job, megaphone = self.make_setup()
        live_feeder(env, "events", KEYS, count=240, interval=0.02)

        def trigger():
            yield env.sim.timeout(2.5)
            yield megaphone.migrate("count", [(0, 1, 1.0), (2, 3, 1.0)])

        trigger_process = env.sim.process(trigger())
        env.run(until=12.0)
        assert trigger_process.ok
        finals = {}
        for key, _t, value, _w in job.sink_results("out"):
            finals[key] = max(finals.get(key, 0), value)
        assert finals == expected_counts(240)

    def test_migration_moves_all_origin_state(self):
        env, job, megaphone = self.make_setup()
        live_feeder(env, "events", KEYS, count=120, interval=0.02, nbytes=100)
        env.run(until=3.0)
        origin = job.instance("count", 0)
        target = job.instance("count", 1)
        before = origin.state.total_bytes
        process = megaphone.migrate("count", [(0, 1, 1.0)])
        report = env.sim.run(until=process)
        assert report.migrated_bytes >= before * 0.9
        assert origin.state.total_bytes == 0 or before == 0
        assert report.bins_migrated > 0

    def test_migration_time_scales_with_bytes(self):
        env, job, megaphone = self.make_setup()
        live_feeder(env, "events", KEYS, count=120, interval=0.01, nbytes=50_000)
        env.run(until=3.0)
        process = megaphone.migrate("count", [(0, 1, 1.0)])
        report = env.sim.run(until=process)
        assert report.total_seconds > 0
