"""Unit tests for the keyed state backend (disk charging, compaction)."""

import pytest

from repro.engine.state import KeyedStateBackend
from repro.sim import Simulator
from repro.cluster import Cluster


@pytest.fixture
def env():
    sim = Simulator()
    cluster = Cluster(sim)
    machine = cluster.add_machine(
        "m0",
        cores=4,
        nic_bandwidth=1e9,
        disks=1,
        disk_read_bandwidth=100.0,
        disk_write_bandwidth=100.0,
        disk_capacity=10**9,
    )
    return sim, machine


def make_backend(sim, machine, memtable_limit=100, compaction_trigger=3):
    return KeyedStateBackend(
        sim,
        machine,
        name="test-backend",
        owned_ranges=[(0, 8)],
        memtable_limit=memtable_limit,
        compaction_trigger=compaction_trigger,
    )


class TestMaintenance:
    def test_flush_charges_disk_time(self, env):
        sim, machine = env
        backend = make_backend(sim, machine)
        backend.put(0, "k", "v", nbytes=200)  # over the memtable limit
        assert backend.store.needs_flush
        process = sim.process(backend.maintenance())
        sim.run(until=process)
        assert sim.now == pytest.approx(2.0)  # 200 B at 100 B/s
        assert backend.disk_write_bytes == 200

    def test_no_flush_below_threshold(self, env):
        sim, machine = env
        backend = make_backend(sim, machine)
        backend.put(0, "k", "v", nbytes=10)
        process = sim.process(backend.maintenance())
        sim.run(until=process)
        assert sim.now == 0.0
        assert backend.store.memtable.size_bytes == 10

    def test_compaction_runs_in_background(self, env):
        """Compaction I/O must not block the maintenance caller."""
        sim, machine = env
        backend = make_backend(sim, machine, memtable_limit=10, compaction_trigger=3)
        for i in range(3):
            backend.put(0, f"k{i}", i, nbytes=50)
            flush = sim.process(backend.maintenance())
            sim.run(until=flush)
        # The third maintenance call flushed (0.5 s each) and kicked the
        # merge off in the background: the calls themselves only paid for
        # the three flushes.
        assert sim.now == pytest.approx(1.5)
        assert backend._compacting
        sim.run()
        assert not backend._compacting
        assert len(backend.store.tables) == 1

    def test_single_compaction_at_a_time(self, env):
        sim, machine = env
        backend = make_backend(sim, machine, memtable_limit=10, compaction_trigger=2)
        for i in range(4):
            backend.put(0, f"k{i}", i, nbytes=50)
            process = sim.process(backend.maintenance())
            sim.run(until=process)
        # Multiple triggers while compacting must not stack processes.
        first = sim.process(backend.maintenance())
        second = sim.process(backend.maintenance())
        sim.run()
        assert len(backend.store.tables) >= 1

    def test_checkpoint_charges_sync_flush(self, env):
        sim, machine = env
        backend = make_backend(sim, machine)
        backend.put(0, "k", "v", nbytes=300)

        def run():
            checkpoint = yield from backend.checkpoint(1)
            return checkpoint

        process = sim.process(run())
        checkpoint = sim.run(until=process)
        assert sim.now == pytest.approx(3.0)  # synchronous 300 B write
        assert checkpoint.delta_bytes == 300


class TestOwnershipHelpers:
    def test_adopt_and_drop_round_trip(self, env):
        sim, machine = env
        backend = make_backend(sim, machine)
        backend.adopt_groups(8, 12)
        backend.put(10, "k", "v", nbytes=40)
        assert backend.bytes_in_groups(8, 12) == 40
        released = backend.drop_groups(8, 12)
        assert released == 40
        assert backend.total_bytes == 0

    def test_restore_resets_contents(self, env):
        sim, machine = env
        backend = make_backend(sim, machine)
        backend.put(1, "a", "x", nbytes=10)
        backend.store.flush()
        tables = list(backend.store.tables)
        fresh = make_backend(sim, machine)
        fresh.restore(tables, owned_ranges=[(0, 8)])
        assert fresh.get(1, "a") == "x"
        assert fresh.total_bytes == 10
